// Wall-clock timing helpers.
//
// WallTimer measures real elapsed time for coarse experiment harness use.
// ScopedTimer accumulates into a double, which is how the pipeline collects
// per-stage (coarsen / embed / partition) breakdowns reported in Figures
// 7-8 of the paper.
#pragma once

#include <chrono>

namespace sp {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds the lifetime of the scope to *sink on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() {
    if (sink_) *sink_ += timer_.seconds();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace sp
