// Lightweight always-on assertion macros for invariant checking.
//
// SP_ASSERT stays enabled in release builds: the partitioning algorithms in
// this library rely on structural invariants (CSR symmetry, matching
// validity, balance constraints) whose violation would silently corrupt
// results, so we prefer a crisp diagnostic over speed on the handful of
// checks that survive into hot paths. SP_DEBUG_ASSERT compiles away unless
// SP_ENABLE_DEBUG_ASSERTS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sp {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "SP_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace sp

#define SP_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::sp::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define SP_ASSERT_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) ::sp::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef SP_ENABLE_DEBUG_ASSERTS
#define SP_DEBUG_ASSERT(expr) SP_ASSERT(expr)
#else
#define SP_DEBUG_ASSERT(expr) \
  do {                        \
  } while (0)
#endif
