// Small statistics helpers used by the experiment harnesses: the paper
// reports geometric means of relative cut-sizes (Tables 2-3) and min/max
// ranges across processor counts, so those are first-class here.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sp {

double mean(std::span<const double> xs);
double geometric_mean(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

/// Accumulates a running summary without storing samples.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width numeric formatting for table output ("1,234" style thousands
/// separators as used in the paper's Table 3).
std::string with_commas(long long value);
std::string fixed(double value, int decimals);

}  // namespace sp
