#include "support/options.hpp"

#include <cstdlib>
#include <stdexcept>

namespace sp {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare flag
    }
  }
}

bool Options::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) != 0;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  queried_[key] = true;
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::string> Options::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!queried_.count(key)) out.push_back(key);
  }
  return out;
}

}  // namespace sp
