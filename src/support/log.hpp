// Minimal leveled logging to stderr.
//
// The experiment harnesses print their tables to stdout; diagnostics go
// through this logger so output streams never interleave. Thread-safe: the
// BSP engine's ranks log concurrently.
#pragma once

#include <sstream>
#include <string>

namespace sp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Default kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Core sink; prefix and thread-safe write. Prefer the SP_LOG macro.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sp

#define SP_LOG(level) ::sp::detail::LogLine(::sp::LogLevel::level)
