// Deterministic, fast pseudo-random number generation.
//
// All randomized algorithms in the library (random matching order, random
// great circles, initial embeddings, synthetic graph generators) take an
// explicit Rng or seed so experiments are reproducible run-to-run and
// rank-to-rank. The generator is xoshiro256** seeded via SplitMix64, which
// is far faster than std::mt19937_64 and has no measurable bias for our
// uses.
#pragma once

#include <cstdint>
#include <vector>

namespace sp {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (useful for per-vertex deterministic
/// "random" priorities without storing generator state).
std::uint64_t hash64(std::uint64_t x);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the member helpers below avoid
/// distribution overhead in hot loops.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Bernoulli trial with probability p.
  bool chance(double p);

  /// Derive an independent child generator (for per-rank / per-level
  /// streams). Children with distinct tags are statistically independent.
  Rng split(std::uint64_t tag) const;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Identity permutation [0, n) then shuffled: the canonical "visit vertices
/// in random order" helper used by matching and refinement.
std::vector<std::uint32_t> random_permutation(std::uint32_t n, Rng& rng);

}  // namespace sp
