// Tiny command-line option parser for the examples and bench harnesses.
//
// Supports "--key=value", "--key value" and boolean "--flag". Unknown keys
// are an error so typos in experiment sweeps fail loudly instead of running
// the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sp {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never queried; call at end of main to warn
  /// about typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace sp
