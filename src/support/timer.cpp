#include "support/timer.hpp"

// Header-only today; this TU anchors the library target and reserves a home
// for platform-specific timing (e.g. rdtsc calibration) if it is needed.
