#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/assert.hpp"

namespace sp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  // Log-sum formulation avoids overflow on products of large cut sizes.
  double logsum = 0.0;
  for (double x : xs) {
    SP_ASSERT_MSG(x > 0.0, "geometric_mean requires positive values");
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double min_of(std::span<const double> xs) {
  SP_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  SP_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  SP_ASSERT(!xs.empty());
  SP_ASSERT(p >= 0.0 && p <= 1.0);
  std::sort(xs.begin(), xs.end());
  double idx = p * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::add(double x) {
  // Welford's online algorithm.
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

std::string with_commas(long long value) {
  bool negative = value < 0;
  unsigned long long v =
      negative ? 0ull - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace sp
