#include "support/random.hpp"

#include <cmath>
#include <numeric>

namespace sp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed all 256 bits from SplitMix64 per the xoshiro authors' advice; this
  // avoids the all-zero state and decorrelates nearby seeds.
  std::uint64_t s = seed;
  for (auto& word : s_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Marsaglia polar method; one value per call (the pair is not cached to
  // keep the generator state a pure function of call count).
  for (;;) {
    double u = uniform(-1.0, 1.0);
    double v = uniform(-1.0, 1.0);
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
  }
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split(std::uint64_t tag) const {
  std::uint64_t mix = s_[0] ^ rotl(s_[2], 13) ^ hash64(tag);
  return Rng(mix);
}

std::vector<std::uint32_t> random_permutation(std::uint32_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.shuffle(perm);
  return perm;
}

}  // namespace sp
