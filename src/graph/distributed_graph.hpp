// Per-rank view of a block-distributed graph.
//
// The paper's algorithms start from the graph "read in by P processors in
// approximately equal sized chunks": rank r owns the contiguous global
// vertex range [block_begin(r), block_begin(r+1)). Each rank's view keeps
// its rows of the CSR with *global* neighbour ids plus the sorted list of
// ghost vertices (non-owned neighbours), which is exactly the halo the
// distributed algorithms must exchange.
//
// In this reproduction the underlying CsrGraph lives in shared memory, but
// the algorithms only touch it through LocalView, so their communication
// structure (what must be sent where) is identical to a genuinely
// distributed implementation — that is what the comm tracing measures.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sp::graph {

/// Owner rank of a global vertex under block distribution of n vertices
/// over p ranks (first n%p ranks own one extra).
std::uint32_t block_owner(VertexId global, VertexId n, std::uint32_t p);

/// First global vertex owned by rank r.
VertexId block_begin(std::uint32_t rank, VertexId n, std::uint32_t p);

class LocalView {
 public:
  /// Builds rank `rank`'s view of `g` distributed over `nranks` ranks.
  LocalView(const CsrGraph& g, std::uint32_t rank, std::uint32_t nranks);

  std::uint32_t rank() const { return rank_; }
  std::uint32_t nranks() const { return nranks_; }
  VertexId global_begin() const { return begin_; }
  VertexId global_end() const { return end_; }
  VertexId num_local() const { return end_ - begin_; }

  bool owns(VertexId global) const { return global >= begin_ && global < end_; }
  VertexId to_local(VertexId global) const { return global - begin_; }
  VertexId to_global(VertexId local) const { return begin_ + local; }

  /// Neighbours of a local vertex, as global ids.
  std::span<const VertexId> neighbors(VertexId local) const {
    return graph_->neighbors(begin_ + local);
  }
  std::span<const Weight> edge_weights_of(VertexId local) const {
    return graph_->edge_weights_of(begin_ + local);
  }
  Weight vertex_weight(VertexId local) const {
    return graph_->vertex_weight(begin_ + local);
  }

  /// Sorted global ids of ghost vertices (non-owned neighbours of owned
  /// vertices).
  const std::vector<VertexId>& ghosts() const { return ghosts_; }

  /// Index of a global ghost id within ghosts(), or kInvalidVertex.
  VertexId ghost_index(VertexId global) const;

  /// Owned vertices with at least one non-owned neighbour (the paper's
  /// boundary set V~).
  const std::vector<VertexId>& boundary_locals() const { return boundary_; }

  /// Ranks this rank shares at least one edge with, sorted.
  const std::vector<std::uint32_t>& neighbor_ranks() const {
    return neighbor_ranks_;
  }

  /// Per neighbour rank: the ghost ids owned by that rank (sorted; aligned
  /// with neighbor_ranks()).
  const std::vector<std::vector<VertexId>>& ghosts_by_rank() const {
    return ghosts_by_rank_;
  }

  const CsrGraph& global_graph() const { return *graph_; }

 private:
  const CsrGraph* graph_;
  std::uint32_t rank_;
  std::uint32_t nranks_;
  VertexId begin_;
  VertexId end_;
  std::vector<VertexId> ghosts_;
  std::unordered_map<VertexId, VertexId> ghost_lookup_;
  std::vector<VertexId> boundary_;
  std::vector<std::uint32_t> neighbor_ranks_;
  std::vector<std::vector<VertexId>> ghosts_by_rank_;
};

}  // namespace sp::graph
