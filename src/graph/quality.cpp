#include "graph/quality.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace sp::graph {

KwayQuality analyze_partition(const CsrGraph& g,
                              std::span<const std::uint32_t> part,
                              std::uint32_t parts) {
  SP_ASSERT(part.size() == g.num_vertices());
  SP_ASSERT(parts >= 1);
  KwayQuality q;
  q.parts.resize(parts);

  Weight cut2 = 0;
  std::vector<std::uint32_t> seen_parts;  // scratch for distinct remotes
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    SP_ASSERT(part[v] < parts);
    PartStats& mine = q.parts[part[v]];
    mine.weight += g.vertex_weight(v);
    ++mine.vertices;

    auto nbrs = g.neighbors(v);
    auto ws = g.edge_weights_of(v);
    bool is_boundary = false;
    seen_parts.clear();
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      std::uint32_t other = part[nbrs[k]];
      if (other == part[v]) continue;
      is_boundary = true;
      cut2 += ws[k];
      mine.external_edges += ws[k];
      if (std::find(seen_parts.begin(), seen_parts.end(), other) ==
          seen_parts.end()) {
        seen_parts.push_back(other);
      }
    }
    if (is_boundary) ++mine.boundary;
    q.comm_volume += seen_parts.size();
  }
  q.edge_cut = cut2 / 2;

  // Imbalance.
  double ideal = static_cast<double>(g.total_vertex_weight()) /
                 static_cast<double>(parts);
  Weight max_w = 0;
  for (const PartStats& p : q.parts) max_w = std::max(max_w, p.weight);
  q.imbalance = ideal > 0.0 ? static_cast<double>(max_w) / ideal - 1.0 : 0.0;

  // Per-part connectivity: one restricted BFS sweep over the whole graph.
  std::vector<VertexId> comp(g.num_vertices(), kInvalidVertex);
  std::vector<VertexId> stack;
  std::vector<VertexId> comps_per_part(parts, 0);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (comp[s] != kInvalidVertex) continue;
    ++comps_per_part[part[s]];
    comp[s] = s;
    stack.push_back(s);
    while (!stack.empty()) {
      VertexId u = stack.back();
      stack.pop_back();
      for (VertexId w : g.neighbors(u)) {
        if (comp[w] == kInvalidVertex && part[w] == part[u]) {
          comp[w] = s;
          stack.push_back(w);
        }
      }
    }
  }
  for (std::uint32_t p = 0; p < parts; ++p) {
    q.parts[p].components = comps_per_part[p];
    if (q.parts[p].vertices > 0 && comps_per_part[p] > 1) {
      q.all_parts_connected = false;
    }
  }
  return q;
}

KwayQuality analyze_partition(const CsrGraph& g, const Bipartition& part) {
  std::vector<std::uint32_t> as_kway(part.side.begin(), part.side.end());
  return analyze_partition(g, as_kway, 2);
}

VertexCutQuality analyze_vertex_cut(
    VertexId num_vertices, std::span<const std::pair<VertexId, VertexId>> edges,
    std::span<const std::uint32_t> edge_block, std::uint32_t parts) {
  SP_ASSERT(edges.size() == edge_block.size());
  SP_ASSERT(parts >= 1);
  VertexCutQuality q;
  q.block_edges.assign(parts, 0);

  // Per-vertex replica membership as a dense bitset: words_per_vertex
  // 64-bit words per vertex, so the scan is O(E + N * parts / 64).
  const std::size_t words = (parts + 63) / 64;
  std::vector<std::uint64_t> bits(static_cast<std::size_t>(num_vertices) *
                                  words);
  auto add_replica = [&](VertexId v, std::uint32_t b) {
    std::uint64_t& word = bits[static_cast<std::size_t>(v) * words + b / 64];
    const std::uint64_t mask = 1ull << (b % 64);
    if ((word & mask) == 0) {
      word |= mask;
      ++q.total_replicas;
    }
  };
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [u, v] = edges[i];
    const std::uint32_t b = edge_block[i];
    SP_ASSERT(u < num_vertices && v < num_vertices && b < parts);
    ++q.block_edges[b];
    add_replica(u, b);
    add_replica(v, b);
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    bool covered = false;
    for (std::size_t w = 0; w < words; ++w) {
      covered = covered || bits[static_cast<std::size_t>(v) * words + w] != 0;
    }
    if (covered) ++q.covered_vertices;
  }
  q.max_block_edges =
      *std::max_element(q.block_edges.begin(), q.block_edges.end());
  q.replication_factor =
      q.covered_vertices > 0
          ? static_cast<double>(q.total_replicas) / q.covered_vertices
          : 0.0;
  const double ideal =
      static_cast<double>(edges.size()) / static_cast<double>(parts);
  q.edge_balance =
      ideal > 0.0 ? static_cast<double>(q.max_block_edges) / ideal : 0.0;
  return q;
}

}  // namespace sp::graph
