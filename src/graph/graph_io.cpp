#include "graph/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sp::graph::io {

namespace {
[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph_io: " + what);
}

std::ifstream open_or_fail(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return in;
}

/// Next non-comment, non-empty line; comment char '%' (METIS and MM agree).
bool next_line(std::istream& in, std::string* line) {
  while (std::getline(in, *line)) {
    std::size_t pos = line->find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if ((*line)[pos] == '%' || (*line)[pos] == '#') continue;
    return true;
  }
  return false;
}
}  // namespace

CsrGraph read_metis(std::istream& in) {
  std::string line;
  if (!next_line(in, &line)) fail("empty METIS file");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  std::string fmt = "0";
  header >> n >> m;
  if (header.fail()) fail("bad METIS header");
  header >> fmt;  // optional
  bool has_eweights = fmt.size() >= 1 && fmt[fmt.size() - 1] == '1';
  bool has_vweights = fmt.size() >= 2 && fmt[fmt.size() - 2] == '1';

  if (n >= kInvalidVertex) fail("too many vertices");
  GraphBuilder builder(static_cast<VertexId>(n));
  builder.reserve_edges(m);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!next_line(in, &line)) fail("truncated METIS file");
    std::istringstream row(line);
    if (has_vweights) {
      Weight w;
      row >> w;
      if (row.fail()) fail("missing vertex weight");
      builder.set_vertex_weight(static_cast<VertexId>(v), w);
    }
    std::uint64_t nbr;
    while (row >> nbr) {
      if (nbr == 0 || nbr > n) fail("neighbor index out of range");
      Weight w = 1;
      if (has_eweights) {
        row >> w;
        if (row.fail()) fail("missing edge weight");
      }
      // METIS is 1-based and lists each edge from both sides; add once.
      auto u = static_cast<VertexId>(v);
      auto x = static_cast<VertexId>(nbr - 1);
      if (u < x) builder.add_edge(u, x, w);
    }
  }
  CsrGraph g = builder.build();
  if (g.num_edges() != m) {
    // Tolerate files that disagree slightly (some exporters count loops);
    // still a structural red flag worth surfacing.
    // Not fatal: proceed with the parsed edges.
  }
  return g;
}

CsrGraph read_metis_file(const std::string& path) {
  auto in = open_or_fail(path);
  return read_metis(in);
}

void write_metis(const CsrGraph& g, std::ostream& out) {
  bool weighted_edges = false;
  for (Weight w : g.edge_weights()) {
    if (w != 1) {
      weighted_edges = true;
      break;
    }
  }
  bool weighted_vertices = false;
  for (Weight w : g.vertex_weights()) {
    if (w != 1) {
      weighted_vertices = true;
      break;
    }
  }
  out << g.num_vertices() << ' ' << g.num_edges();
  if (weighted_edges || weighted_vertices) {
    out << ' ' << (weighted_vertices ? "1" : "0") << (weighted_edges ? "1" : "0");
  }
  out << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    if (weighted_vertices) {
      out << g.vertex_weight(v);
      first = false;
    }
    auto nbrs = g.neighbors(v);
    auto ws = g.edge_weights_of(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (!first) out << ' ';
      first = false;
      out << (nbrs[k] + 1);
      if (weighted_edges) out << ' ' << ws[k];
    }
    out << '\n';
  }
}

void write_metis_file(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot write " + path);
  write_metis(g, out);
}

CsrGraph read_matrix_market(std::istream& in) {
  std::string line;
  // Header line starts with %%MatrixMarket; we accept any coordinate
  // pattern/real/integer general/symmetric matrix.
  if (!std::getline(in, line)) fail("empty MatrixMarket file");
  if (line.rfind("%%MatrixMarket", 0) != 0) fail("missing MatrixMarket banner");
  if (line.find("coordinate") == std::string::npos) {
    fail("only coordinate MatrixMarket supported");
  }
  if (!next_line(in, &line)) fail("missing MM size line");
  std::istringstream size_line(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  size_line >> rows >> cols >> nnz;
  if (size_line.fail()) fail("bad MM size line");
  if (rows != cols) fail("matrix must be square to form a graph");
  if (rows >= kInvalidVertex) fail("too many vertices");

  GraphBuilder builder(static_cast<VertexId>(rows));
  builder.reserve_edges(nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    if (!next_line(in, &line)) fail("truncated MM file");
    std::istringstream entry(line);
    std::uint64_t i = 0, j = 0;
    entry >> i >> j;  // any trailing value ignored
    if (entry.fail() || i == 0 || j == 0 || i > rows || j > cols) {
      fail("bad MM entry");
    }
    if (i == j) continue;
    auto u = static_cast<VertexId>(i - 1);
    auto v = static_cast<VertexId>(j - 1);
    if (u > v) std::swap(u, v);
    builder.add_edge(u, v, 1);
  }
  // Duplicates (from general storage listing both (i,j) and (j,i)) were
  // merged by the builder with summed weight; normalise weights back to 1.
  CsrGraph merged = builder.build();
  std::vector<Weight> unit(merged.num_arcs(), 1);
  return CsrGraph(std::vector<EdgeIndex>(merged.xadj()),
                  std::vector<VertexId>(merged.adjncy()),
                  std::vector<Weight>(merged.vertex_weights()), std::move(unit));
}

CsrGraph read_matrix_market_file(const std::string& path) {
  auto in = open_or_fail(path);
  return read_matrix_market(in);
}

void write_coords(const std::vector<geom::Vec2>& coords, std::ostream& out) {
  for (const auto& p : coords) out << p[0] << ' ' << p[1] << '\n';
}

std::vector<geom::Vec2> read_coords(std::istream& in) {
  std::vector<geom::Vec2> coords;
  double x, y;
  while (in >> x >> y) coords.push_back(geom::vec2(x, y));
  return coords;
}

}  // namespace sp::graph::io
