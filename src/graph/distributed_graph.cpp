#include "graph/distributed_graph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace sp::graph {

std::uint32_t block_owner(VertexId global, VertexId n, std::uint32_t p) {
  SP_ASSERT(global < n);
  VertexId base = n / p;
  VertexId extra = n % p;
  // First `extra` ranks own base+1 vertices.
  VertexId fat = extra * (base + 1);
  if (global < fat) return global / (base + 1);
  return extra + static_cast<std::uint32_t>((global - fat) / std::max<VertexId>(base, 1));
}

VertexId block_begin(std::uint32_t rank, VertexId n, std::uint32_t p) {
  SP_ASSERT(rank <= p);
  VertexId base = n / p;
  VertexId extra = n % p;
  if (rank <= extra) return rank * (base + 1);
  return extra * (base + 1) + (rank - extra) * base;
}

LocalView::LocalView(const CsrGraph& g, std::uint32_t rank, std::uint32_t nranks)
    : graph_(&g),
      rank_(rank),
      nranks_(nranks),
      begin_(block_begin(rank, g.num_vertices(), nranks)),
      end_(block_begin(rank + 1, g.num_vertices(), nranks)) {
  SP_ASSERT(rank < nranks);
  const VertexId n = g.num_vertices();
  for (VertexId local = 0; local < num_local(); ++local) {
    bool is_boundary = false;
    for (VertexId v : neighbors(local)) {
      if (!owns(v)) {
        ghosts_.push_back(v);
        is_boundary = true;
      }
    }
    if (is_boundary) boundary_.push_back(local);
  }
  std::sort(ghosts_.begin(), ghosts_.end());
  ghosts_.erase(std::unique(ghosts_.begin(), ghosts_.end()), ghosts_.end());
  ghost_lookup_.reserve(ghosts_.size());
  for (VertexId i = 0; i < ghosts_.size(); ++i) ghost_lookup_[ghosts_[i]] = i;

  // Group ghosts by owner rank.
  std::uint32_t current_rank = nranks;  // sentinel
  for (VertexId ghost : ghosts_) {
    std::uint32_t owner = block_owner(ghost, n, nranks);
    if (owner != current_rank) {
      neighbor_ranks_.push_back(owner);
      ghosts_by_rank_.emplace_back();
      current_rank = owner;
    }
    ghosts_by_rank_.back().push_back(ghost);
  }
  // Ghosts are sorted by id and block ownership is monotone in id, so
  // neighbor_ranks_ is already sorted and unique.
}

VertexId LocalView::ghost_index(VertexId global) const {
  auto it = ghost_lookup_.find(global);
  return it == ghost_lookup_.end() ? kInvalidVertex : it->second;
}

}  // namespace sp::graph
