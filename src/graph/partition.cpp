#include "graph/partition.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace sp::graph {

Weight cut_size(const CsrGraph& g, const Bipartition& part) {
  SP_ASSERT(part.size() == g.num_vertices());
  Weight cut2 = 0;  // each cut edge counted from both endpoints
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (part[u] != part[nbrs[k]]) cut2 += ws[k];
    }
  }
  return cut2 / 2;
}

std::pair<Weight, Weight> side_weights(const CsrGraph& g,
                                       const Bipartition& part) {
  Weight w0 = 0, w1 = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    (part[v] == 0 ? w0 : w1) += g.vertex_weight(v);
  }
  return {w0, w1};
}

double imbalance(const CsrGraph& g, const Bipartition& part) {
  auto [w0, w1] = side_weights(g, part);
  double ideal = static_cast<double>(w0 + w1) / 2.0;
  if (ideal == 0.0) return 0.0;
  return static_cast<double>(std::max(w0, w1)) / ideal - 1.0;
}

std::vector<VertexId> boundary_vertices(const CsrGraph& g,
                                        const Bipartition& part) {
  std::vector<VertexId> out;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (part[u] != part[v]) {
        out.push_back(u);
        break;
      }
    }
  }
  return out;
}

Weight external_degree(const CsrGraph& g, const Bipartition& part, VertexId v) {
  Weight ext = 0;
  auto nbrs = g.neighbors(v);
  auto ws = g.edge_weights_of(v);
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    if (part[v] != part[nbrs[k]]) ext += ws[k];
  }
  return ext;
}

std::vector<VertexId> connected_components(const CsrGraph& g,
                                           VertexId* num_components) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> comp(n, kInvalidVertex);
  VertexId next = 0;
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < n; ++s) {
    if (comp[s] != kInvalidVertex) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : g.neighbors(u)) {
        if (comp[v] == kInvalidVertex) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  if (num_components) *num_components = next;
  return comp;
}

std::vector<VertexId> bfs_distance(const CsrGraph& g,
                                   std::span<const VertexId> seeds) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> dist(n, n);  // n == "infinity"
  std::deque<VertexId> queue;
  for (VertexId s : seeds) {
    SP_ASSERT(s < n);
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.neighbors(u)) {
      if (dist[v] > dist[u] + 1) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

PartitionReport evaluate(const CsrGraph& g, const Bipartition& part) {
  PartitionReport report;
  report.cut = cut_size(g, part);
  auto [w0, w1] = side_weights(g, part);
  report.side0 = w0;
  report.side1 = w1;
  report.imbalance = imbalance(g, part);
  return report;
}

}  // namespace sp::graph
