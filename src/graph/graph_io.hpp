// Graph file I/O.
//
// Two interchange formats so users can run the partitioner on their own
// inputs (e.g. actual UFL/SuiteSparse matrices, which the paper used):
//  - METIS/Chaco .graph format (the format ParMetis and Pt-Scotch consume)
//  - MatrixMarket coordinate format (the format SuiteSparse distributes);
//    the pattern is symmetrised and diagonal entries dropped.
// Coordinates can be saved/loaded as whitespace-separated "x y" lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"

namespace sp::graph::io {

/// Reads a METIS .graph file (optionally with edge/vertex weights per the
/// fmt field). Throws std::runtime_error on malformed input.
CsrGraph read_metis(std::istream& in);
CsrGraph read_metis_file(const std::string& path);

void write_metis(const CsrGraph& g, std::ostream& out);
void write_metis_file(const CsrGraph& g, const std::string& path);

/// Reads a MatrixMarket coordinate file as an undirected graph: entry (i,j)
/// becomes edge {i,j}; values are ignored; pattern is symmetrised;
/// diagonal dropped. Throws std::runtime_error on malformed input.
CsrGraph read_matrix_market(std::istream& in);
CsrGraph read_matrix_market_file(const std::string& path);

void write_coords(const std::vector<geom::Vec2>& coords, std::ostream& out);
std::vector<geom::Vec2> read_coords(std::istream& in);

}  // namespace sp::graph::io
