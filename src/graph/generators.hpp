// Synthetic graph generators.
//
// The paper evaluates on nine UFL sparse-matrix graphs (Table 1). Those
// inputs are not redistributable here, so each generator below rebuilds the
// same *structure class* deterministically from a seed: 2-D grids
// (ecology*), Delaunay triangulations (delaunay_n*), grid-plus-long-range
// circuit graphs (G3_circuit), mesh + power-law hub graphs (kkt_power),
// long thin triangulated traces (hugetrace) and triangulations with
// circular holes (hugebubbles). Generators that produce meshes also return
// the true vertex coordinates, which play the role of the paper's
// Mathematica embeddings for the coordinate-based baselines (RCB, G30).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"

namespace sp::graph::gen {

struct GeneratedGraph {
  CsrGraph graph;
  /// Natural coordinates when the generator is geometric; empty otherwise.
  std::vector<geom::Vec2> coords;
  std::string name;
};

/// rows x cols 5-point grid (the "ecology" landscape class).
GeneratedGraph grid2d(std::uint32_t rows, std::uint32_t cols);

/// 3-D 7-point grid flattened (no coordinates returned; exercises the
/// "graph without usable 2-D geometry" path).
GeneratedGraph grid3d(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz);

/// Delaunay triangulation of n uniform points in the unit square.
GeneratedGraph delaunay(std::uint32_t n, std::uint64_t seed);

/// Grid with additional random long-range "wire" edges: the G3_circuit
/// analogue. extra_fraction is the ratio of long edges to grid vertices.
GeneratedGraph circuit(std::uint32_t rows, std::uint32_t cols,
                       double extra_fraction, std::uint64_t seed);

/// Mesh + power-law supply network: Delaunay base plus `hubs` vertices of
/// degree ~ hub_degree attached preferentially. Analogue of kkt_power's
/// hard-to-cut structure.
GeneratedGraph kkt_power(std::uint32_t n, std::uint32_t hubs,
                         std::uint32_t hub_degree, std::uint64_t seed);

/// Delaunay points inside a long serpentine strip of given aspect ratio:
/// the hugetrace analogue (very small separators relative to N).
GeneratedGraph trace(std::uint32_t n, double aspect, std::uint64_t seed);

/// Delaunay points in a disc with `holes` circular holes ("bubbles");
/// triangles inside holes are removed. Analogue of hugebubbles.
GeneratedGraph bubbles(std::uint32_t n, std::uint32_t holes,
                       std::uint64_t seed);

/// Random geometric graph: n points in the unit square, edges within
/// radius r (clipped to k-nearest style cap to bound degree).
GeneratedGraph random_geometric(std::uint32_t n, double radius,
                                std::uint64_t seed);

/// Erdos-Renyi G(n, m) — not mesh-like at all; used by tests to check the
/// pipeline degrades gracefully on geometry-free graphs.
GeneratedGraph erdos_renyi(std::uint32_t n, std::uint64_t m,
                           std::uint64_t seed);

/// Ring of n vertices (pathological small separator; tests).
GeneratedGraph cycle(std::uint32_t n);

/// Complete graph (tests: no good separator exists).
GeneratedGraph complete(std::uint32_t n);

/// Deterministic seeded permutation of a graph's undirected edges,
/// consumed one edge at a time — the canonical way to replay any CsrGraph
/// (or generator output) as a reproducible edge stream.
///
/// Each edge is canonicalised to (min(u,v), max(u,v)), the canonical list
/// is sorted, and the sorted list is Fisher-Yates-shuffled with Rng(seed).
/// The order therefore depends only on the edge *set* and the seed, never
/// on CSR construction order: two graphs built from the same edges in any
/// insertion order stream identically. Self loops cannot occur (CsrGraph
/// drops them) and duplicates are already merged by GraphBuilder, so each
/// undirected edge is yielded exactly once.
class EdgePermutation {
 public:
  EdgePermutation(const CsrGraph& g, std::uint64_t seed);

  /// Yields the next edge (with its weight); false when exhausted.
  bool next(VertexId* u, VertexId* v, Weight* w = nullptr);

  void reset() { pos_ = 0; }
  std::uint64_t size() const { return edges_.size(); }
  std::uint64_t position() const { return pos_; }

 private:
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<Weight> weights_;
  std::uint64_t pos_ = 0;
};

/// Seeded vertex-visit order for vertex streaming: the identity permutation
/// of [0, n) shuffled with Rng(seed). Trivially independent of construction
/// order (it never looks at the adjacency).
std::vector<VertexId> vertex_permutation(const CsrGraph& g,
                                         std::uint64_t seed);

}  // namespace sp::graph::gen
