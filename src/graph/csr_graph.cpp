#include "graph/csr_graph.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "support/assert.hpp"

namespace sp::graph {

CsrGraph::CsrGraph(std::vector<EdgeIndex> xadj, std::vector<VertexId> adjncy,
                   std::vector<Weight> vertex_weights,
                   std::vector<Weight> edge_weights)
    : n_(xadj.empty() ? 0 : static_cast<VertexId>(xadj.size() - 1)),
      xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      vweights_(std::move(vertex_weights)),
      eweights_(std::move(edge_weights)) {
  if (vweights_.empty()) vweights_.assign(n_, 1);
  if (eweights_.empty()) eweights_.assign(adjncy_.size(), 1);
  SP_ASSERT(vweights_.size() == n_);
  SP_ASSERT(eweights_.size() == adjncy_.size());
  SP_ASSERT(xadj_.empty() || xadj_.back() == adjncy_.size());
  total_vweight_ = std::accumulate(vweights_.begin(), vweights_.end(), Weight{0});
  // Each undirected edge appears twice; halve the arc-weight sum.
  Weight arc_weight =
      std::accumulate(eweights_.begin(), eweights_.end(), Weight{0});
  total_eweight_ = arc_weight / 2;
}

void CsrGraph::validate() const {
  SP_ASSERT(xadj_.size() == static_cast<std::size_t>(n_) + (n_ > 0 ? 1 : 0) ||
            (n_ == 0 && xadj_.empty()));
  for (VertexId v = 0; v < n_; ++v) {
    SP_ASSERT_MSG(xadj_[v] <= xadj_[v + 1], "xadj must be nondecreasing");
    for (EdgeIndex e = xadj_[v]; e < xadj_[v + 1]; ++e) {
      SP_ASSERT_MSG(adjncy_[e] < n_, "adjacency index out of range");
      SP_ASSERT_MSG(adjncy_[e] != v, "self loop");
      SP_ASSERT_MSG(eweights_[e] > 0, "nonpositive edge weight");
    }
  }
  SP_ASSERT_MSG(is_symmetric(), "graph must be symmetric");
}

bool CsrGraph::is_symmetric() const {
  for (VertexId u = 0; u < n_; ++u) {
    for (EdgeIndex e = xadj_[u]; e < xadj_[u + 1]; ++e) {
      VertexId v = adjncy_[e];
      // Find the reverse arc via linear scan; adjacency lists of sparse
      // graphs are short so this stays near O(M * avg_degree).
      bool found = false;
      for (EdgeIndex f = xadj_[v]; f < xadj_[v + 1]; ++f) {
        if (adjncy_[f] == u && eweights_[f] == eweights_[e]) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

EdgeIndex CsrGraph::max_degree() const {
  EdgeIndex best = 0;
  for (VertexId v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

double CsrGraph::average_degree() const {
  return n_ == 0 ? 0.0
                 : static_cast<double>(num_arcs()) / static_cast<double>(n_);
}

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : n_(num_vertices), vweights_(num_vertices, 1) {}

void GraphBuilder::add_edge(VertexId u, VertexId v, Weight w) {
  SP_ASSERT(u < n_ && v < n_);
  if (u == v) return;  // contraction produces self loops; drop them here
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v, w);
}

void GraphBuilder::set_vertex_weight(VertexId v, Weight w) {
  SP_ASSERT(v < n_);
  vweights_[v] = w;
}

CsrGraph GraphBuilder::build() {
  // Sort canonical (u<v) edges, merge duplicates by summing weights, then
  // emit both arc directions.
  std::sort(edges_.begin(), edges_.end());
  std::vector<std::tuple<VertexId, VertexId, Weight>> merged;
  merged.reserve(edges_.size());
  for (const auto& edge : edges_) {
    if (!merged.empty() && std::get<0>(merged.back()) == std::get<0>(edge) &&
        std::get<1>(merged.back()) == std::get<1>(edge)) {
      std::get<2>(merged.back()) += std::get<2>(edge);
    } else {
      merged.push_back(edge);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  std::vector<EdgeIndex> xadj(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v, w] : merged) {
    (void)w;
    ++xadj[u + 1];
    ++xadj[v + 1];
  }
  for (std::size_t i = 1; i < xadj.size(); ++i) xadj[i] += xadj[i - 1];

  std::vector<VertexId> adjncy(xadj[n_]);
  std::vector<Weight> eweights(xadj[n_]);
  std::vector<EdgeIndex> cursor(xadj.begin(), xadj.end() - 1);
  for (const auto& [u, v, w] : merged) {
    adjncy[cursor[u]] = v;
    eweights[cursor[u]++] = w;
    adjncy[cursor[v]] = u;
    eweights[cursor[v]++] = w;
  }
  return CsrGraph(std::move(xadj), std::move(adjncy), std::move(vweights_),
                  std::move(eweights));
}

CsrGraph from_edges(VertexId num_vertices,
                    std::span<const std::pair<VertexId, VertexId>> edges) {
  GraphBuilder builder(num_vertices);
  builder.reserve_edges(edges.size());
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

CsrGraph induced_subgraph(const CsrGraph& g, std::span<const VertexId> vertices,
                          std::vector<VertexId>* old_to_new) {
  std::vector<VertexId> map(g.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    SP_ASSERT(vertices[i] < g.num_vertices());
    SP_ASSERT_MSG(map[vertices[i]] == kInvalidVertex,
                  "duplicate vertex in induced_subgraph");
    map[vertices[i]] = static_cast<VertexId>(i);
  }

  GraphBuilder builder(static_cast<VertexId>(vertices.size()));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    VertexId u = vertices[i];
    builder.set_vertex_weight(static_cast<VertexId>(i), g.vertex_weight(u));
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      VertexId v_new = map[nbrs[k]];
      // Emit each undirected edge once (from the lower new id).
      if (v_new != kInvalidVertex && static_cast<VertexId>(i) < v_new) {
        builder.add_edge(static_cast<VertexId>(i), v_new, ws[k]);
      }
    }
  }
  if (old_to_new) *old_to_new = std::move(map);
  return builder.build();
}

}  // namespace sp::graph
