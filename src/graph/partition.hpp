// Bipartition representation and quality measures.
//
// The paper evaluates a single edge separator (2-way cut): cut-size |S| is
// the number of edges with endpoints in different parts, and the balance
// constraint is |V1| ~= |V2| ~= |V|/2. For weighted (coarse) graphs both
// measures use weights, which keeps multilevel projection exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sp::graph {

/// side[v] in {0,1}. Kept as a plain vector so refinement can flip in O(1).
struct Bipartition {
  std::vector<std::uint8_t> side;

  explicit Bipartition(std::size_t n = 0) : side(n, 0) {}
  std::uint8_t operator[](VertexId v) const { return side[v]; }
  std::uint8_t& operator[](VertexId v) { return side[v]; }
  std::size_t size() const { return side.size(); }
};

/// Total weight of edges crossing the partition.
Weight cut_size(const CsrGraph& g, const Bipartition& part);

/// Vertex weight of each side: {weight(side 0), weight(side 1)}.
std::pair<Weight, Weight> side_weights(const CsrGraph& g,
                                       const Bipartition& part);

/// max(side)/ideal - 1; 0 means perfectly balanced. ideal = total/2.
double imbalance(const CsrGraph& g, const Bipartition& part);

/// Vertices incident to at least one cut edge (on either side).
std::vector<VertexId> boundary_vertices(const CsrGraph& g,
                                        const Bipartition& part);

/// Count of cut edges incident to v under `part`.
Weight external_degree(const CsrGraph& g, const Bipartition& part, VertexId v);

/// Connected components; returns component id per vertex and sets
/// *num_components.
std::vector<VertexId> connected_components(const CsrGraph& g,
                                           VertexId* num_components);

/// BFS distance from the seed set (unreachable = kInvalidVertex sentinel is
/// not used; distance is set to n, i.e. "infinite"). Used by the hop-based
/// band extraction that mirrors Pt-Scotch.
std::vector<VertexId> bfs_distance(const CsrGraph& g,
                                   std::span<const VertexId> seeds);

/// Quality/validity summary for reporting and tests.
struct PartitionReport {
  Weight cut = 0;
  Weight side0 = 0;
  Weight side1 = 0;
  double imbalance = 0.0;
};

PartitionReport evaluate(const CsrGraph& g, const Bipartition& part);

}  // namespace sp::graph
