#include "graph/reorder.hpp"

#include <algorithm>
#include <deque>

#include "graph/partition.hpp"
#include "support/assert.hpp"

namespace sp::graph {

std::vector<VertexId> bfs_order(const CsrGraph& g, VertexId start) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::deque<VertexId> queue;
  if (n == 0) return order;
  SP_ASSERT(start < n);
  queue.push_back(start);
  visited[start] = true;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (VertexId v : g.neighbors(u)) {
      if (!visited[v]) {
        visited[v] = true;
        queue.push_back(v);
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!visited[v]) order.push_back(v);
  }
  return order;
}

namespace {
/// Heuristic pseudo-peripheral vertex: two BFS sweeps from an arbitrary
/// minimum-degree start.
VertexId pseudo_peripheral(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  VertexId start = 0;
  for (VertexId v = 1; v < n; ++v) {
    if (g.degree(v) < g.degree(start)) start = v;
  }
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<VertexId> seeds = {start};
    auto dist = bfs_distance(g, seeds);
    VertexId far = start;
    VertexId far_d = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != n && dist[v] > far_d) {
        far_d = dist[v];
        far = v;
      }
    }
    start = far;
  }
  return start;
}
}  // namespace

std::vector<VertexId> rcm_order(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;
  order.reserve(n);
  if (n == 0) return order;
  std::vector<bool> visited(n, false);
  std::vector<VertexId> nbr_buf;

  // Cover every component, each from its own pseudo-peripheral seed
  // (approximated by the global heuristic for the first, min-degree
  // unvisited vertex for the rest).
  VertexId first = pseudo_peripheral(g);
  for (VertexId round = 0; round < n; ++round) {
    VertexId seed = kInvalidVertex;
    if (round == 0) {
      seed = first;
    } else {
      for (VertexId v = 0; v < n; ++v) {
        if (!visited[v] &&
            (seed == kInvalidVertex || g.degree(v) < g.degree(seed))) {
          seed = v;
        }
      }
    }
    if (seed == kInvalidVertex) break;
    if (visited[seed]) continue;

    std::deque<VertexId> queue = {seed};
    visited[seed] = true;
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      nbr_buf.clear();
      for (VertexId v : g.neighbors(u)) {
        if (!visited[v]) {
          visited[v] = true;
          nbr_buf.push_back(v);
        }
      }
      std::sort(nbr_buf.begin(), nbr_buf.end(), [&](VertexId a, VertexId b) {
        return g.degree(a) < g.degree(b);
      });
      for (VertexId v : nbr_buf) queue.push_back(v);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

CsrGraph permute(const CsrGraph& g, std::span<const VertexId> perm) {
  const VertexId n = g.num_vertices();
  SP_ASSERT(perm.size() == n);
  std::vector<VertexId> old_to_new(n, kInvalidVertex);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    SP_ASSERT(perm[new_id] < n);
    SP_ASSERT_MSG(old_to_new[perm[new_id]] == kInvalidVertex,
                  "perm is not a permutation");
    old_to_new[perm[new_id]] = new_id;
  }
  GraphBuilder builder(n);
  for (VertexId new_id = 0; new_id < n; ++new_id) {
    VertexId old_id = perm[new_id];
    builder.set_vertex_weight(new_id, g.vertex_weight(old_id));
    auto nbrs = g.neighbors(old_id);
    auto ws = g.edge_weights_of(old_id);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      VertexId other = old_to_new[nbrs[k]];
      if (new_id < other) builder.add_edge(new_id, other, ws[k]);
    }
  }
  return builder.build();
}

VertexId bandwidth(const CsrGraph& g) {
  VertexId best = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      best = std::max(best, u > v ? u - v : v - u);
    }
  }
  return best;
}

double average_edge_span(const CsrGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  double total = 0.0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (v > u) total += static_cast<double>(v - u);
    }
  }
  return total / static_cast<double>(g.num_edges());
}

}  // namespace sp::graph
