// Vertex reordering for memory locality.
//
// The BSP algorithms stream adjacency lists constantly; cache behaviour
// depends on vertex numbering. BFS and reverse-Cuthill-McKee orderings
// (plus the permutation plumbing to apply them) let users of the library
// renumber inputs once up front. Bandwidth/locality metrics quantify the
// effect and are exercised by tests and the micro-benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sp::graph {

/// BFS ordering from `start` (unreached vertices appended in id order).
/// perm[new_id] = old_id.
std::vector<VertexId> bfs_order(const CsrGraph& g, VertexId start = 0);

/// Reverse Cuthill-McKee: BFS from a pseudo-peripheral vertex, visiting
/// neighbours in degree order, then reversed. perm[new_id] = old_id.
std::vector<VertexId> rcm_order(const CsrGraph& g);

/// Applies `perm` (perm[new] = old): returns the renumbered graph.
CsrGraph permute(const CsrGraph& g, std::span<const VertexId> perm);

/// Max |u - v| over edges — the classic bandwidth measure RCM minimizes.
VertexId bandwidth(const CsrGraph& g);

/// Mean |u - v| over edges (locality proxy for streaming workloads).
double average_edge_span(const CsrGraph& g);

}  // namespace sp::graph
