#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geometry/delaunay.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::graph::gen {

using geom::Vec2;
using geom::vec2;

namespace {

/// Builds a graph from Delaunay edges over `points`, keeping only edges
/// whose both endpoints satisfy nothing extra (plain) — helper shared by
/// the mesh-type generators.
GeneratedGraph from_delaunay(std::vector<Vec2> points, std::string name) {
  auto edges = geom::delaunay_edges(points);
  GraphBuilder builder(static_cast<VertexId>(points.size()));
  builder.reserve_edges(edges.size());
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords = std::move(points);
  out.name = std::move(name);
  return out;
}

}  // namespace

GeneratedGraph grid2d(std::uint32_t rows, std::uint32_t cols) {
  SP_ASSERT(rows > 0 && cols > 0);
  const std::uint64_t n64 = static_cast<std::uint64_t>(rows) * cols;
  SP_ASSERT(n64 < kInvalidVertex);
  const auto n = static_cast<VertexId>(n64);
  GraphBuilder builder(n);
  builder.reserve_edges(2 * n64);
  std::vector<Vec2> coords(n);
  auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<VertexId>(static_cast<std::uint64_t>(r) * cols + c);
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      coords[id(r, c)] = vec2(c, r);
      if (c + 1 < cols) builder.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.add_edge(id(r, c), id(r + 1, c));
    }
  }
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords = std::move(coords);
  out.name = "grid2d_" + std::to_string(rows) + "x" + std::to_string(cols);
  return out;
}

GeneratedGraph grid3d(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz) {
  const std::uint64_t n64 = static_cast<std::uint64_t>(nx) * ny * nz;
  SP_ASSERT(n64 < kInvalidVertex);
  const auto n = static_cast<VertexId>(n64);
  GraphBuilder builder(n);
  auto id = [nx, ny](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return static_cast<VertexId>(
        (static_cast<std::uint64_t>(z) * ny + y) * nx + x);
  };
  for (std::uint32_t z = 0; z < nz; ++z)
    for (std::uint32_t y = 0; y < ny; ++y)
      for (std::uint32_t x = 0; x < nx; ++x) {
        if (x + 1 < nx) builder.add_edge(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) builder.add_edge(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) builder.add_edge(id(x, y, z), id(x, y, z + 1));
      }
  GeneratedGraph out;
  out.graph = builder.build();
  out.name = "grid3d";
  return out;
}

GeneratedGraph delaunay(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> points(n);
  for (auto& p : points) p = vec2(rng.uniform(), rng.uniform());
  return from_delaunay(std::move(points), "delaunay_" + std::to_string(n));
}

GeneratedGraph circuit(std::uint32_t rows, std::uint32_t cols,
                       double extra_fraction, std::uint64_t seed) {
  GeneratedGraph base = grid2d(rows, cols);
  Rng rng(seed);
  const VertexId n = base.graph.num_vertices();
  GraphBuilder builder(n);
  // Re-add grid edges...
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : base.graph.neighbors(u)) {
      if (u < v) builder.add_edge(u, v);
    }
  }
  // ...plus long-range wires; mostly local-ish (power-law length bias) the
  // way circuit nets are: short nets dominate, a few span the die.
  auto extra = static_cast<std::uint64_t>(extra_fraction * n);
  for (std::uint64_t k = 0; k < extra; ++k) {
    auto u = static_cast<VertexId>(rng.below(n));
    // Wire length ~ r^-2 distribution across the grid.
    double len = std::min(1.0, 4.0 / (rows * rng.uniform() + 4.0));
    auto dr = static_cast<std::int64_t>((rng.uniform() - 0.5) * len * rows);
    auto dc = static_cast<std::int64_t>((rng.uniform() - 0.5) * len * cols);
    std::int64_t r = static_cast<std::int64_t>(u / cols) + dr;
    std::int64_t c = static_cast<std::int64_t>(u % cols) + dc;
    r = std::clamp<std::int64_t>(r, 0, rows - 1);
    c = std::clamp<std::int64_t>(c, 0, cols - 1);
    auto v = static_cast<VertexId>(r * cols + c);
    if (u != v) builder.add_edge(u, v);
  }
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords = std::move(base.coords);
  out.name = "circuit_" + std::to_string(rows) + "x" + std::to_string(cols);
  return out;
}

GeneratedGraph kkt_power(std::uint32_t n, std::uint32_t hubs,
                         std::uint32_t hub_degree, std::uint64_t seed) {
  SP_ASSERT(hubs < n);
  Rng rng(seed);
  // Mesh part: Delaunay over n - hubs points.
  std::uint32_t mesh_n = n - hubs;
  std::vector<Vec2> points(mesh_n);
  for (auto& p : points) p = vec2(rng.uniform(), rng.uniform());
  auto edges = geom::delaunay_edges(points);

  GraphBuilder builder(n);
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  // Hubs attach to many mesh vertices scattered over the whole domain —
  // this is what destroys small geometric separators in kkt_power-type
  // KKT/power-network systems.
  for (std::uint32_t h = 0; h < hubs; ++h) {
    VertexId hub = mesh_n + h;
    for (std::uint32_t k = 0; k < hub_degree; ++k) {
      builder.add_edge(hub, static_cast<VertexId>(rng.below(mesh_n)));
    }
    // Hubs also form a sparse backbone among themselves.
    if (h > 0) builder.add_edge(hub, mesh_n + static_cast<VertexId>(rng.below(h)));
  }
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords.resize(n);
  for (std::uint32_t i = 0; i < mesh_n; ++i) out.coords[i] = points[i];
  // Hubs get the centroid-ish random positions (they have no natural
  // location; kkt rows for constraints behave the same way).
  for (std::uint32_t h = 0; h < hubs; ++h) {
    out.coords[mesh_n + h] = vec2(rng.uniform(), rng.uniform());
  }
  out.name = "kkt_power_" + std::to_string(n);
  return out;
}

GeneratedGraph trace(std::uint32_t n, double aspect, std::uint64_t seed) {
  SP_ASSERT(aspect >= 1.0);
  Rng rng(seed);
  // Points along a serpentine strip: parameter t in [0, aspect), the strip
  // follows a sine-wave spine of unit width.
  std::vector<Vec2> points(n);
  for (auto& p : points) {
    double t = rng.uniform() * aspect;
    double w = rng.uniform();  // across the strip
    double spine_y = 0.35 * aspect *
                     std::sin(2.0 * std::numbers::pi * t / aspect * 3.0);
    p = vec2(t, spine_y + w);
  }
  return from_delaunay(std::move(points), "trace_" + std::to_string(n));
}

GeneratedGraph bubbles(std::uint32_t n, std::uint32_t holes,
                       std::uint64_t seed) {
  Rng rng(seed);
  // Hole centres/radii inside the unit square.
  std::vector<Vec2> centers(holes);
  std::vector<double> radii(holes);
  for (std::uint32_t h = 0; h < holes; ++h) {
    centers[h] = vec2(rng.uniform(0.15, 0.85), rng.uniform(0.15, 0.85));
    radii[h] = rng.uniform(0.05, 0.16);
  }
  auto in_hole = [&](const Vec2& p) {
    for (std::uint32_t h = 0; h < holes; ++h) {
      if (geom::distance2(p, centers[h]) < radii[h] * radii[h]) return true;
    }
    return false;
  };
  // Rejection-sample points outside the holes.
  std::vector<Vec2> points;
  points.reserve(n);
  while (points.size() < n) {
    Vec2 p = vec2(rng.uniform(), rng.uniform());
    if (!in_hole(p)) points.push_back(p);
  }
  // Triangulate, then drop triangles whose centroid falls inside a hole so
  // the holes become real topological holes in the mesh.
  auto tri = geom::delaunay_triangulate(points);
  GraphBuilder builder(n);
  for (const auto& t : tri.triangles) {
    Vec2 centroid = (points[t[0]] + points[t[1]] + points[t[2]]) / 3.0;
    if (in_hole(centroid)) continue;
    builder.add_edge(t[0], t[1]);
    builder.add_edge(t[1], t[2]);
    builder.add_edge(t[2], t[0]);
  }
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords = std::move(points);
  out.name = "bubbles_" + std::to_string(n);
  return out;
}

GeneratedGraph random_geometric(std::uint32_t n, double radius,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec2> points(n);
  for (auto& p : points) p = vec2(rng.uniform(), rng.uniform());
  // Grid-bucket the points so neighbour search is O(1) per point.
  double cell = std::max(radius, 1e-6);
  auto cells = static_cast<std::uint32_t>(std::ceil(1.0 / cell));
  std::vector<std::vector<VertexId>> buckets(
      static_cast<std::size_t>(cells) * cells);
  auto bucket_of = [&](const Vec2& p) {
    auto cx = std::min<std::uint32_t>(static_cast<std::uint32_t>(p[0] / cell),
                                      cells - 1);
    auto cy = std::min<std::uint32_t>(static_cast<std::uint32_t>(p[1] / cell),
                                      cells - 1);
    return cy * cells + cx;
  };
  for (VertexId i = 0; i < n; ++i) buckets[bucket_of(points[i])].push_back(i);

  GraphBuilder builder(n);
  double r2 = radius * radius;
  for (VertexId i = 0; i < n; ++i) {
    auto cx = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(points[i][0] / cell), cells - 1);
    auto cy = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(points[i][1] / cell), cells - 1);
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        std::int64_t bx = cx + dx, by = cy + dy;
        if (bx < 0 || by < 0 || bx >= cells || by >= cells) continue;
        for (VertexId j : buckets[static_cast<std::size_t>(by) * cells +
                                  static_cast<std::size_t>(bx)]) {
          if (j <= i) continue;
          if (geom::distance2(points[i], points[j]) <= r2) {
            builder.add_edge(i, j);
          }
        }
      }
    }
  }
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords = std::move(points);
  out.name = "rgg_" + std::to_string(n);
  return out;
}

GeneratedGraph erdos_renyi(std::uint32_t n, std::uint64_t m,
                           std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder(n);
  builder.reserve_edges(m);
  std::uint64_t added = 0;
  while (added < m) {
    auto u = static_cast<VertexId>(rng.below(n));
    auto v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    builder.add_edge(u, v);
    ++added;
  }
  GeneratedGraph out;
  out.graph = builder.build();
  out.name = "er_" + std::to_string(n);
  return out;
}

GeneratedGraph cycle(std::uint32_t n) {
  SP_ASSERT(n >= 3);
  GraphBuilder builder(n);
  for (VertexId i = 0; i < n; ++i) builder.add_edge(i, (i + 1) % n);
  GeneratedGraph out;
  out.graph = builder.build();
  out.coords.resize(n);
  for (VertexId i = 0; i < n; ++i) {
    double angle = 2.0 * std::numbers::pi * i / n;
    out.coords[i] = vec2(std::cos(angle), std::sin(angle));
  }
  out.name = "cycle_" + std::to_string(n);
  return out;
}

GeneratedGraph complete(std::uint32_t n) {
  GraphBuilder builder(n);
  for (VertexId i = 0; i < n; ++i)
    for (VertexId j = i + 1; j < n; ++j) builder.add_edge(i, j);
  GeneratedGraph out;
  out.graph = builder.build();
  out.name = "complete_" + std::to_string(n);
  return out;
}

EdgePermutation::EdgePermutation(const CsrGraph& g, std::uint64_t seed) {
  // Canonical edge list: each undirected edge once, as (min, max). The CSR
  // stores edges symmetrically, so taking only the u < v direction visits
  // every edge exactly once; sorting erases any trace of adjacency order.
  edges_.reserve(g.num_edges());
  std::vector<Weight> canon_w;
  canon_w.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights_of(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        edges_.emplace_back(u, nbrs[i]);
        canon_w.push_back(ws[i]);
      }
    }
  }
  std::vector<std::uint32_t> order(edges_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return edges_[a] < edges_[b];
            });
  Rng rng(seed);
  rng.shuffle(order);
  std::vector<std::pair<VertexId, VertexId>> shuffled(edges_.size());
  weights_.resize(edges_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    shuffled[i] = edges_[order[i]];
    weights_[i] = canon_w[order[i]];
  }
  edges_ = std::move(shuffled);
}

bool EdgePermutation::next(VertexId* u, VertexId* v, Weight* w) {
  if (pos_ >= edges_.size()) return false;
  *u = edges_[pos_].first;
  *v = edges_[pos_].second;
  if (w != nullptr) *w = weights_[pos_];
  ++pos_;
  return true;
}

std::vector<VertexId> vertex_permutation(const CsrGraph& g,
                                         std::uint64_t seed) {
  Rng rng(seed);
  return random_permutation(g.num_vertices(), rng);
}

}  // namespace sp::graph::gen
