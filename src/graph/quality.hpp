// Partition quality diagnostics beyond the raw edge cut.
//
// For the paper's own motivating application — distributing simulation
// work over P processors — the edge cut proxies halo traffic, but
// practitioners also care about total communication volume (distinct
// remote adjacencies), per-part boundary sizes, and whether parts are
// connected (fragmented parts behave badly in solvers). This module
// computes those for 2-way and k-way assignments and is used by the
// examples and integration tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"

namespace sp::graph {

struct PartStats {
  Weight weight = 0;            // vertex weight of the part
  VertexId vertices = 0;
  VertexId boundary = 0;        // vertices with a neighbour outside
  Weight external_edges = 0;    // weighted cut edges incident to the part
  VertexId components = 0;      // connected components within the part
};

struct KwayQuality {
  Weight edge_cut = 0;
  /// Total communication volume: for each vertex, the number of *distinct
  /// remote parts* among its neighbours, summed (the metric ParMetis
  /// calls "totalv"; a better proxy for halo bytes than the cut).
  std::uint64_t comm_volume = 0;
  double imbalance = 0.0;
  std::vector<PartStats> parts;
  /// True iff every part induces a connected subgraph.
  bool all_parts_connected = true;
};

KwayQuality analyze_partition(const CsrGraph& g,
                              std::span<const std::uint32_t> part,
                              std::uint32_t parts);

/// Convenience overload for bipartitions.
KwayQuality analyze_partition(const CsrGraph& g, const Bipartition& part);

}  // namespace sp::graph
