// Partition quality diagnostics beyond the raw edge cut.
//
// For the paper's own motivating application — distributing simulation
// work over P processors — the edge cut proxies halo traffic, but
// practitioners also care about total communication volume (distinct
// remote adjacencies), per-part boundary sizes, and whether parts are
// connected (fragmented parts behave badly in solvers). This module
// computes those for 2-way and k-way assignments and is used by the
// examples and integration tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"

namespace sp::graph {

struct PartStats {
  Weight weight = 0;            // vertex weight of the part
  VertexId vertices = 0;
  VertexId boundary = 0;        // vertices with a neighbour outside
  Weight external_edges = 0;    // weighted cut edges incident to the part
  VertexId components = 0;      // connected components within the part
};

struct KwayQuality {
  Weight edge_cut = 0;
  /// Total communication volume: for each vertex, the number of *distinct
  /// remote parts* among its neighbours, summed (the metric ParMetis
  /// calls "totalv"; a better proxy for halo bytes than the cut).
  std::uint64_t comm_volume = 0;
  double imbalance = 0.0;
  std::vector<PartStats> parts;
  /// True iff every part induces a connected subgraph.
  bool all_parts_connected = true;
};

KwayQuality analyze_partition(const CsrGraph& g,
                              std::span<const std::uint32_t> part,
                              std::uint32_t parts);

/// Convenience overload for bipartitions.
KwayQuality analyze_partition(const CsrGraph& g, const Bipartition& part);

/// Quality of a *vertex cut* — the model the streaming edge partitioners
/// (sp::stream HDRF/DBH) produce: every edge lives in exactly one of
/// `parts` blocks and a vertex is replicated into every block that holds
/// one of its edges. The figure of merit is the replication factor (mean
/// replicas per non-isolated vertex; 1.0 = no vertex ever cut), with edge
/// balance as the load constraint (blocks hold edges, not vertices).
struct VertexCutQuality {
  /// sum_v |blocks(v)| / #vertices with at least one edge; >= 1.
  double replication_factor = 0.0;
  /// max block edge count / (m / parts); >= 1 when m > 0.
  double edge_balance = 0.0;
  std::uint64_t total_replicas = 0;
  std::uint64_t max_block_edges = 0;
  VertexId covered_vertices = 0;  // vertices with >= 1 incident edge
  std::vector<std::uint64_t> block_edges;
};

/// `edges[i]` is assigned to block `edge_block[i]` (< parts). Vertices are
/// identified by the endpoints; `num_vertices` bounds the id space.
VertexCutQuality analyze_vertex_cut(
    VertexId num_vertices, std::span<const std::pair<VertexId, VertexId>> edges,
    std::span<const std::uint32_t> edge_block, std::uint32_t parts);

}  // namespace sp::graph
