// Compressed-sparse-row graph: the central data structure of the library.
//
// Graphs are undirected and stored symmetrically (each edge {u,v} appears in
// both adjacency lists). Vertices and edges carry integer weights: unit
// weights for input graphs, aggregated weights for the coarse graphs
// produced by contraction (a coarse vertex's weight is the number of fine
// vertices it represents; a coarse edge's weight is the number of fine edges
// it collapses — this is what makes the coarse cut an exact proxy for the
// fine cut during multilevel partitioning).
#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

namespace sp::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint64_t;
using Weight = std::int64_t;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of fully-formed CSR arrays. xadj.size() == n+1,
  /// adjncy.size() == xadj[n] == 2*M for an undirected graph with M edges.
  /// Weights may be empty, meaning all-ones.
  CsrGraph(std::vector<EdgeIndex> xadj, std::vector<VertexId> adjncy,
           std::vector<Weight> vertex_weights, std::vector<Weight> edge_weights);

  VertexId num_vertices() const { return n_; }
  /// Number of undirected edges (adjacency entries / 2).
  EdgeIndex num_edges() const { return xadj_.empty() ? 0 : xadj_[n_] / 2; }
  /// Number of directed adjacency entries (2*M).
  EdgeIndex num_arcs() const { return xadj_.empty() ? 0 : xadj_[n_]; }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjncy_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }
  std::span<const Weight> edge_weights_of(VertexId v) const {
    return {eweights_.data() + xadj_[v],
            static_cast<std::size_t>(xadj_[v + 1] - xadj_[v])};
  }

  EdgeIndex degree(VertexId v) const { return xadj_[v + 1] - xadj_[v]; }
  Weight vertex_weight(VertexId v) const { return vweights_[v]; }
  Weight total_vertex_weight() const { return total_vweight_; }
  Weight total_edge_weight() const { return total_eweight_; }

  const std::vector<EdgeIndex>& xadj() const { return xadj_; }
  const std::vector<VertexId>& adjncy() const { return adjncy_; }
  const std::vector<Weight>& vertex_weights() const { return vweights_; }
  const std::vector<Weight>& edge_weights() const { return eweights_; }

  /// Structural checks: sorted xadj, in-range adjacency, no self loops,
  /// symmetric with matching weights. O(M log d). Aborts (SP_ASSERT) on the
  /// first violation; used by tests and after construction from untrusted
  /// sources.
  void validate() const;

  /// True if every edge {u,v} also appears as {v,u} with equal weight.
  bool is_symmetric() const;

  EdgeIndex max_degree() const;
  double average_degree() const;

 private:
  VertexId n_ = 0;
  std::vector<EdgeIndex> xadj_;
  std::vector<VertexId> adjncy_;
  std::vector<Weight> vweights_;
  std::vector<Weight> eweights_;
  Weight total_vweight_ = 0;
  Weight total_eweight_ = 0;
};

/// Incremental builder: accumulate undirected edges then produce a
/// symmetric, deduplicated CsrGraph. Duplicate {u,v} insertions have their
/// weights summed (contraction relies on this). Self loops are dropped.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  void add_edge(VertexId u, VertexId v, Weight w = 1);
  void set_vertex_weight(VertexId v, Weight w);
  void reserve_edges(std::size_t m) { edges_.reserve(m); }

  VertexId num_vertices() const { return n_; }
  std::size_t num_added_edges() const { return edges_.size(); }

  /// Consumes the builder's edge list.
  CsrGraph build();

 private:
  VertexId n_;
  std::vector<std::tuple<VertexId, VertexId, Weight>> edges_;
  std::vector<Weight> vweights_;
};

/// Convenience: build from an explicit undirected edge list with unit
/// weights.
CsrGraph from_edges(VertexId num_vertices,
                    std::span<const std::pair<VertexId, VertexId>> edges);

/// Extract the vertex-induced subgraph. `vertices` need not be sorted;
/// `old_to_new` (optional out) receives the renumbering map, kInvalidVertex
/// for vertices outside the subgraph.
CsrGraph induced_subgraph(const CsrGraph& g, std::span<const VertexId> vertices,
                          std::vector<VertexId>* old_to_new = nullptr);

}  // namespace sp::graph
