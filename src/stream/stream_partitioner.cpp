#include "stream/stream_partitioner.hpp"

#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::stream {

StreamPartitioner::StreamPartitioner(const StreamConfig& cfg)
    : cfg_(cfg),
      words_per_vertex_((cfg.blocks + 63) / 64),
      block_edges_(cfg.blocks, 0),
      block_vertices_(cfg.blocks, 0) {
  SP_ASSERT_MSG(cfg.blocks >= 1, "StreamConfig.blocks must be >= 1");
  if (cfg.num_vertices_hint > 0) {
    replica_bits_.reserve(static_cast<std::size_t>(cfg.num_vertices_hint) *
                          words_per_vertex_);
    degree_.reserve(cfg.num_vertices_hint);
  }
}

BlockId StreamPartitioner::assign(const StreamEdge&) {
  SP_ASSERT_MSG(false, "assign(edge) called on a vertex partitioner");
  return kNoBlock;
}

BlockId StreamPartitioner::assign(VertexId, std::span<const VertexId>) {
  SP_ASSERT_MSG(false, "assign(vertex) called on an edge partitioner");
  return kNoBlock;
}

void StreamPartitioner::finish() { finished_ = true; }

std::uint32_t StreamPartitioner::replicas(VertexId v) const {
  const std::size_t base = static_cast<std::size_t>(v) * words_per_vertex_;
  if (base >= replica_bits_.size()) return 0;
  std::uint32_t count = 0;
  for (std::size_t w = 0; w < words_per_vertex_; ++w) {
    count += static_cast<std::uint32_t>(
        __builtin_popcountll(replica_bits_[base + w]));
  }
  return count;
}

double StreamPartitioner::replication_factor() const {
  return touched_vertices_ > 0
             ? static_cast<double>(total_replicas_) / touched_vertices_
             : 0.0;
}

std::uint64_t StreamPartitioner::seeded_hash(VertexId v) const {
  return hash64(cfg_.seed ^ (0x9E3779B97F4A7C15ull + v));
}

std::uint32_t StreamPartitioner::partial_degree(VertexId v) const {
  return v < degree_.size() ? degree_[v] : 0;
}

void StreamPartitioner::bump_degree(VertexId v) {
  ensure_vertex_(v);
  ++degree_[v];
}

bool StreamPartitioner::in_block(VertexId v, BlockId b) const {
  const std::size_t base = static_cast<std::size_t>(v) * words_per_vertex_;
  if (base >= replica_bits_.size()) return false;
  return (replica_bits_[base + b / 64] >> (b % 64)) & 1u;
}

void StreamPartitioner::add_to_block(VertexId v, BlockId b) {
  SP_ASSERT(b < cfg_.blocks);
  ensure_vertex_(v);
  std::uint64_t& word =
      replica_bits_[static_cast<std::size_t>(v) * words_per_vertex_ + b / 64];
  const std::uint64_t mask = 1ull << (b % 64);
  if ((word & mask) == 0) {
    word |= mask;
    ++total_replicas_;
    ++block_vertices_[b];
    // First replica anywhere == first sighting of the vertex: replicas(v)
    // just went 0 -> 1 iff this was the vertex's only set bit.
    if (replicas(v) == 1) ++touched_vertices_;
  }
}

void StreamPartitioner::ensure_vertex_(VertexId v) {
  if (v >= degree_.size()) {
    degree_.resize(v + 1, 0);
    replica_bits_.resize(static_cast<std::size_t>(v + 1) * words_per_vertex_,
                         0);
  }
}

std::uint64_t assignment_fingerprint(std::span<const BlockId> assignment) {
  std::uint64_t fp = 0xA076'1D64'78BD'642Full;
  for (BlockId b : assignment) {
    fp = hash64(fp ^ (static_cast<std::uint64_t>(b) + 0x2545F4914F6CDD1Dull));
  }
  return fp;
}

}  // namespace sp::stream
