// Bounded thread-safe queue: the backpressure channel between the stream
// pipeline's stages (reader -> workers -> consumer), modeled on the
// parameter-server "threadsafe limited queue" the PARSA partitioner
// pipelines chunks through.
//
// Capacity is in items (chunks): a fast reader blocks once `capacity`
// chunks are in flight, which is what bounds pipeline memory. close()
// is the shutdown edge for both normal end-of-stream and mid-stream
// failure: pushes start failing immediately, pops drain what is already
// queued and then return nullopt, and every blocked thread wakes — so a
// stage that dies can always unwind the whole pipeline without a hang
// (tests kill the source mid-stream to prove it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/assert.hpp"

namespace sp::stream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : cap_(capacity) {
    SP_ASSERT(capacity >= 1);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (dropping the item) if the queue
  /// was closed before space appeared.
  bool push(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return q_.size() < cap_ || closed_; });
    if (closed_) return false;
    q_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. Drains queued items after close();
  /// nullopt only once closed *and* empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Idempotent. Wakes every blocked producer and consumer.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }
  std::size_t capacity() const { return cap_; }

 private:
  const std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace sp::stream
