// The stream pipeline: reader -> prep workers -> sequential consumer,
// chunked over bounded queues (the PARSA producer/consumer shape:
// StreamReader feeding a threadsafe limited queue feeding partition
// workers feeding writers).
//
//   reader (1 thread)   pulls chunks from the source in stream order,
//                       recycling chunk buffers through a ChunkPool.
//   workers (W threads) run a *pure per-chunk* prep function (endpoint
//                       hashing, adjacency materialisation) — the only
//                       stage that scales with W.
//   consumer (caller)   reorders chunks by index and feeds the
//                       partitioner strictly in stream order.
//
// Determinism argument (DESIGN.md §10): all partitioner state mutation
// happens in the consumer, on one thread, in chunk-index order enforced
// by the reorder buffer; prep is a pure function of the chunk contents.
// Worker count and queue timing therefore change *when* chunks get
// prepped, never *what* the partitioner sees or decides — assignments are
// bit-identical for any W, which the tests assert at W ∈ {1, 4, 8}.
//
// Failure: an exception in any stage closes both queues (every blocked
// thread wakes and unwinds), the pipeline joins, and the first captured
// exception rethrows to the caller — a dying source can never leave a
// dangling thread or a hung queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/csr_graph.hpp"
#include "stream/bounded_queue.hpp"
#include "stream/chunk.hpp"
#include "stream/csr_source.hpp"
#include "stream/online_assignment.hpp"
#include "stream/stream_partitioner.hpp"
#include "support/assert.hpp"

namespace sp::stream {

struct PipelineOptions {
  /// Prep worker threads (>= 1). Assignments are identical for any value.
  std::uint32_t workers = 1;
  /// Bound, in chunks, of each inter-stage queue.
  std::uint32_t queue_capacity = 8;
};

struct PipelineStats {
  std::uint64_t chunks = 0;
  std::uint64_t items = 0;
  /// ChunkPool reuse counters (diagnostic, like comm/arena_*: they vary
  /// with thread timing and are never part of compared output).
  std::uint64_t pool_acquires = 0;
  std::uint64_t pool_hits = 0;
};

/// Runs `source` chunks through prep workers into the sequential
/// `consume` stage. `prep(ChunkT&)` must be pure per-chunk (it runs
/// concurrently on worker threads); `consume(ChunkT&)` runs on the
/// calling thread only, in exact stream order. Rethrows the first stage
/// exception after the pipeline has fully shut down.
template <typename ChunkT, typename SourceT, typename PrepFn,
          typename ConsumeFn>
PipelineStats run_pipeline(SourceT& source, PrepFn&& prep, ConsumeFn&& consume,
                           const PipelineOptions& opt) {
  SP_ASSERT(opt.workers >= 1);
  BoundedQueue<ChunkT> raw(opt.queue_capacity);
  BoundedQueue<ChunkT> done(opt.queue_capacity);
  ChunkPool<ChunkT> pool;

  std::mutex err_mu;
  std::exception_ptr err;
  auto fail = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!err) err = e;
    }
    raw.close();
    done.close();
  };

  std::thread reader([&] {
    try {
      std::uint64_t index = 0;
      for (;;) {
        ChunkT c = pool.acquire(index);
        if (!source.fill(c)) {
          pool.release(std::move(c));
          break;
        }
        ++index;
        if (!raw.push(std::move(c))) return;  // pipeline aborted
      }
      raw.close();  // normal end of stream: workers drain and exit
    } catch (...) {
      fail(std::current_exception());
    }
  });

  std::atomic<std::uint32_t> workers_left{opt.workers};
  std::vector<std::thread> workers;
  workers.reserve(opt.workers);
  for (std::uint32_t w = 0; w < opt.workers; ++w) {
    workers.emplace_back([&] {
      try {
        while (auto c = raw.pop()) {
          prep(*c);
          if (!done.push(std::move(*c))) break;  // pipeline aborted
        }
      } catch (...) {
        fail(std::current_exception());
      }
      // Last worker out closes the consumer's queue.
      if (workers_left.fetch_sub(1) == 1) done.close();
    });
  }

  PipelineStats stats;
  // Reorder buffer: workers race, the partitioner must not see it.
  std::map<std::uint64_t, ChunkT> pending;
  std::uint64_t next = 0;
  try {
    while (auto c = done.pop()) {
      pending.emplace(c->index, std::move(*c));
      for (auto it = pending.begin();
           it != pending.end() && it->first == next; it = pending.begin()) {
        consume(it->second);
        ++next;
        ++stats.chunks;
        stats.items += it->second.items();
        pool.release(std::move(it->second));
        pending.erase(it);
      }
    }
  } catch (...) {
    fail(std::current_exception());
    while (done.pop()) {
      // Discard: unblock any worker still trying to push.
    }
  }

  reader.join();
  for (auto& t : workers) t.join();

  {
    std::lock_guard<std::mutex> lock(err_mu);
    if (err) std::rethrow_exception(err);
  }
  const auto ps = pool.stats();
  stats.pool_acquires = ps.acquires;
  stats.pool_hits = ps.hits;
  return stats;
}

/// One streaming run, end to end.
struct StreamRunOptions {
  std::uint32_t workers = 1;
  std::uint32_t queue_capacity = 8;
  std::uint32_t chunk_size = 4096;
  /// Stream-order seed (graph::gen::EdgePermutation / vertex_permutation).
  std::uint64_t order_seed = 1;
};

struct StreamRunResult {
  /// Per-item block, in stream order (edge mode: one entry per edge;
  /// vertex mode: one entry per streamed vertex).
  std::vector<BlockId> assignments;
  /// assignment_fingerprint(assignments) — the cross-thread-count and
  /// cross-run determinism digest.
  std::uint64_t fingerprint = 0;
  PipelineStats stats;
};

/// Replays `g` as a seeded edge stream through an *edge* partitioner
/// (HDRF/DBH), optionally publishing every placement to `online` as it is
/// decided. Calls part.finish() (and online->seal()) at end of stream.
StreamRunResult run_edge_stream(const graph::CsrGraph& g,
                                StreamPartitioner& part,
                                const StreamRunOptions& opt,
                                OnlineAssignment* online = nullptr);

/// Vertex-mode counterpart (SNE): streams vertices with adjacency; the
/// prep workers materialise each chunk's adjacency lists from the CSR.
StreamRunResult run_vertex_stream(const graph::CsrGraph& g,
                                  StreamPartitioner& part,
                                  const StreamRunOptions& opt,
                                  OnlineAssignment* online = nullptr);

}  // namespace sp::stream
