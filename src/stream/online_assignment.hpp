// OnlineAssignment — the serving side of streaming partitioning: a
// concurrent vertex -> block(s) store that answers partition-lookup
// queries *while the stream is still being ingested*.
//
// Writes come from exactly one thread (the pipeline's sequential consumer
// stage, which is also what keeps assignments deterministic); reads may
// come from any number of threads at any time, including mid-ingest. The
// store is sharded by vertex id with one mutex per shard, so lookups
// contend only with writes to the same shard — the "millions of users"
// query path never serialises behind ingest as a whole.
//
// A lookup during ingest is a consistent point-in-time answer: either the
// vertex is not (yet) known, or the returned placement is exactly what the
// partitioner had decided by some prefix of the stream. Placements only
// grow (an edge partitioner may add replicas; a vertex partitioner never
// reassigns), so served answers are never retracted.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stream/stream_partitioner.hpp"

namespace sp::stream {

class OnlineAssignment {
 public:
  explicit OnlineAssignment(std::uint32_t blocks);

  // ---- Writer side (single sequential thread: the consumer stage) ----

  /// Vertex partitioners: v lives in b.
  void record_vertex(VertexId v, BlockId b);
  /// Edge partitioners: edge {u,v} landed in b — both endpoints gain a
  /// replica in b (idempotent per (vertex, block)).
  void record_edge(VertexId u, VertexId v, BlockId b);
  /// Marks ingest complete (readers can distinguish "not yet" from
  /// "never").
  void seal() { sealed_.store(true, std::memory_order_release); }

  // ---- Reader side (any thread, any time) ----

  struct Lookup {
    bool known = false;
    /// First block the vertex ever landed in (THE block, for vertex
    /// partitioners).
    BlockId primary = kNoBlock;
    std::uint32_t replica_count = 0;
  };

  Lookup lookup(VertexId v) const;
  /// All blocks holding v, ascending block id (copy; may be empty).
  std::vector<BlockId> replicas(VertexId v) const;
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }
  /// Record operations applied so far (monotone; readable mid-ingest).
  std::uint64_t records() const {
    return records_.load(std::memory_order_acquire);
  }
  std::uint32_t blocks() const { return blocks_; }

 private:
  struct Entry {
    BlockId primary = kNoBlock;
    std::vector<BlockId> block_ids;  // ascending
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<VertexId, Entry> map;
  };

  static constexpr std::uint32_t kShards = 64;

  Shard& shard_(VertexId v) { return shards_[v % kShards]; }
  const Shard& shard_(VertexId v) const { return shards_[v % kShards]; }
  void add_(VertexId v, BlockId b);

  std::uint32_t blocks_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<bool> sealed_{false};
};

}  // namespace sp::stream
