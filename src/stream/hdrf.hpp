// HDRF — Highest-Degree Replicated First (Petroni et al., CIKM'15):
// greedy streaming *edge* partitioning for power-law graphs.
//
// For edge {u,v} each block p is scored C(p) = C_REP(p) + λ·C_BAL(p):
//
//   θ(u) = δ(u) / (δ(u) + δ(v))           (partial-degree shares)
//   g(x,p) = p ∈ A(x) ? 1 + (1 − θ(x)) : 0
//   C_REP(p) = g(u,p) + g(v,p)
//   C_BAL(p) = (maxload − load(p)) / (ε + maxload − minload)
//
// The degree term prefers to re-cut (replicate) the *higher*-degree
// endpoint — hubs are replicated first, keeping the replication of the
// power-law tail near 1 — and the λ-weighted balance term steers ties
// toward lighter blocks, bounding edge imbalance. Partial degrees stand in
// for true degrees, which is what makes this single-pass.
#pragma once

#include "stream/stream_partitioner.hpp"

namespace sp::stream {

class HdrfPartitioner final : public StreamPartitioner {
 public:
  explicit HdrfPartitioner(const StreamConfig& cfg)
      : StreamPartitioner(cfg) {}

  std::string_view name() const override { return "hdrf"; }
  StreamMode mode() const override { return StreamMode::kEdge; }

  BlockId assign(const StreamEdge& e) override;

 private:
  // Block loads are block_edges(); max/min are rescanned per edge — O(k)
  // with k blocks, negligible next to the replica-set updates for the
  // block counts this library targets.
};

}  // namespace sp::stream
