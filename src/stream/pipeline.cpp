#include "stream/pipeline.hpp"

#include <cstddef>
#include <span>

#include "comm/obs_hook.hpp"
#include "obs/span.hpp"

namespace sp::stream {
namespace {

// Comm-like Observable for obs spans emitted by the host-side stream
// pipeline: lane 0, a deterministic item-count clock (never wall time —
// tools/lint_nondeterminism.py bans wall clocks here; throughput is
// measured by the bench, outside the subsystem), and an empty cost
// snapshot (no modeled communication happens on the stream path).
struct StreamClock {
  std::uint64_t items = 0;

  std::uint32_t world_rank() const { return 0; }
  double clock() const { return static_cast<double>(items) * 1e-9; }
  comm::CostSnapshot cost_snapshot() const { return comm::CostSnapshot{}; }
};

PipelineOptions pipeline_options(const StreamRunOptions& opt) {
  PipelineOptions p;
  p.workers = opt.workers;
  p.queue_capacity = opt.queue_capacity;
  return p;
}

SourceOptions source_options(const StreamRunOptions& opt) {
  SourceOptions s;
  s.chunk_size = opt.chunk_size;
  s.order_seed = opt.order_seed;
  return s;
}

void finish_run(StreamPartitioner& part, OnlineAssignment* online,
                StreamRunResult& result) {
  part.finish();
  if (online != nullptr) online->seal();
  result.fingerprint = assignment_fingerprint(result.assignments);
  obs::count("stream/items", static_cast<double>(result.assignments.size()));
  obs::gauge("stream/replication_factor", part.replication_factor());
}

}  // namespace

StreamRunResult run_edge_stream(const graph::CsrGraph& g,
                                StreamPartitioner& part,
                                const StreamRunOptions& opt,
                                OnlineAssignment* online) {
  SP_ASSERT(part.mode() == StreamMode::kEdge);
  CsrEdgeSource source(g, source_options(opt));

  StreamRunResult result;
  result.assignments.reserve(source.total_edges());
  StreamClock clk;

  auto prep = [&part](EdgeChunk& c) {
    for (StreamEdge& e : c.edges) {
      e.uhash = part.seeded_hash(e.u);
      e.vhash = part.seeded_hash(e.v);
    }
  };
  auto consume = [&](EdgeChunk& c) {
    obs::Span<StreamClock> span(clk, "stream_chunk", "stream",
                                static_cast<std::int32_t>(c.index));
    for (const StreamEdge& e : c.edges) {
      const BlockId b = part.assign(e);
      result.assignments.push_back(b);
      if (online != nullptr) online->record_edge(e.u, e.v, b);
    }
    clk.items += c.edges.size();
    obs::count("stream/chunks");
    obs::count("stream/edges", static_cast<double>(c.edges.size()));
  };

  result.stats =
      run_pipeline<EdgeChunk>(source, prep, consume, pipeline_options(opt));
  finish_run(part, online, result);
  return result;
}

StreamRunResult run_vertex_stream(const graph::CsrGraph& g,
                                  StreamPartitioner& part,
                                  const StreamRunOptions& opt,
                                  OnlineAssignment* online) {
  SP_ASSERT(part.mode() == StreamMode::kVertex);
  CsrVertexSource source(g, source_options(opt));

  StreamRunResult result;
  result.assignments.reserve(source.total_vertices());
  StreamClock clk;

  auto prep = [&source](VertexChunk& c) { source.materialize(c); };
  auto consume = [&](VertexChunk& c) {
    obs::Span<StreamClock> span(clk, "stream_chunk", "stream",
                                static_cast<std::int32_t>(c.index));
    for (std::size_t i = 0; i < c.vertices.size(); ++i) {
      const VertexId v = c.vertices[i];
      const std::span<const VertexId> nbrs{
          c.neighbors.data() + c.offsets[i],
          static_cast<std::size_t>(c.offsets[i + 1] - c.offsets[i])};
      const BlockId b = part.assign(v, nbrs);
      result.assignments.push_back(b);
      if (online != nullptr) online->record_vertex(v, b);
    }
    clk.items += c.vertices.size();
    obs::count("stream/chunks");
    obs::count("stream/vertices", static_cast<double>(c.vertices.size()));
  };

  result.stats =
      run_pipeline<VertexChunk>(source, prep, consume, pipeline_options(opt));
  finish_run(part, online, result);
  return result;
}

}  // namespace sp::stream
