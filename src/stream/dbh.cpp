#include "stream/dbh.hpp"

#include "support/assert.hpp"

namespace sp::stream {

BlockId DbhPartitioner::assign(const StreamEdge& e) {
  SP_ASSERT_MSG(!finished(), "assign after finish()");
  SP_ASSERT_MSG(e.u != e.v, "self loop in edge stream");
  bump_degree(e.u);
  bump_degree(e.v);
  const std::uint32_t du = partial_degree(e.u);
  const std::uint32_t dv = partial_degree(e.v);
  const std::uint64_t uh = e.uhash != 0 ? e.uhash : seeded_hash(e.u);
  const std::uint64_t vh = e.vhash != 0 ? e.vhash : seeded_hash(e.v);
  // Hash the lower-degree endpoint; a degree tie resolves by the seeded
  // endpoint hashes (deterministic, evaluation-order-free).
  std::uint64_t h;
  if (du < dv) {
    h = uh;
  } else if (dv < du) {
    h = vh;
  } else {
    h = uh < vh ? uh : vh;
  }
  const BlockId b = static_cast<BlockId>(h % blocks());
  add_to_block(e.u, b);
  add_to_block(e.v, b);
  count_edge(b);
  count_item();
  return b;
}

}  // namespace sp::stream
