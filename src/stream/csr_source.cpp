#include "stream/csr_source.hpp"

namespace sp::stream {

CsrEdgeSource::CsrEdgeSource(const graph::CsrGraph& g,
                             const SourceOptions& opt)
    : perm_(g, opt.order_seed), chunk_size_(opt.chunk_size) {}

bool CsrEdgeSource::fill(EdgeChunk& chunk) {
  VertexId u = 0;
  VertexId v = 0;
  while (chunk.edges.size() < chunk_size_ && perm_.next(&u, &v)) {
    chunk.edges.push_back(StreamEdge{u, v, 0, 0});
  }
  return !chunk.edges.empty();
}

CsrVertexSource::CsrVertexSource(const graph::CsrGraph& g,
                                 const SourceOptions& opt)
    : g_(g),
      order_(graph::gen::vertex_permutation(g, opt.order_seed)),
      chunk_size_(opt.chunk_size) {}

bool CsrVertexSource::fill(VertexChunk& chunk) {
  while (chunk.vertices.size() < chunk_size_ && pos_ < order_.size()) {
    chunk.vertices.push_back(order_[pos_++]);
  }
  return !chunk.vertices.empty();
}

void CsrVertexSource::materialize(VertexChunk& chunk) const {
  chunk.offsets.clear();
  chunk.neighbors.clear();
  chunk.offsets.reserve(chunk.vertices.size() + 1);
  for (const VertexId v : chunk.vertices) {
    chunk.offsets.push_back(static_cast<std::uint32_t>(chunk.neighbors.size()));
    auto nbrs = g_.neighbors(v);
    chunk.neighbors.insert(chunk.neighbors.end(), nbrs.begin(), nbrs.end());
  }
  chunk.offsets.push_back(static_cast<std::uint32_t>(chunk.neighbors.size()));
}

}  // namespace sp::stream
