// SNE — streaming neighbourhood expansion: greedy *vertex* streaming with
// a bounded candidate heap.
//
// Each vertex arrives once, with its adjacency, and is placed into the
// block where it has the most already-assigned neighbours — expanding
// existing block neighbourhoods instead of opening new ones — discounted
// by how full that block is and subject to a hard capacity
// (1 + capacity_slack) * ceil(n / k) vertices per block:
//
//   score(b) = |N(v) ∩ assigned(b)| * (1 − load(b) / capacity)
//
// Neighbour blocks are tallied into a k-wide scratch and the non-zero
// tallies flow through a BoundedMinHeap keeping the top-C counts, so the
// balance-aware scoring pass is O(C), not O(k). A vertex with no placed
// neighbours (or whose candidate blocks are all full) falls back to the
// least-loaded block. Ties everywhere resolve by seeded hash of
// (vertex, block). This is the edge-cut face of the subsystem: quality is
// cut + vertex balance, replication factor is exactly 1 by construction.
#pragma once

#include "stream/bounded_heap.hpp"
#include "stream/stream_partitioner.hpp"

namespace sp::stream {

class SnePartitioner final : public StreamPartitioner {
 public:
  explicit SnePartitioner(const StreamConfig& cfg);

  std::string_view name() const override { return "sne"; }
  StreamMode mode() const override { return StreamMode::kVertex; }

  BlockId assign(VertexId v, std::span<const VertexId> neighbors) override;

  std::span<const BlockId> vertex_assignment() const override {
    return assignment_;
  }
  /// Hard per-block vertex capacity derived from the num_vertices_hint.
  std::uint64_t capacity() const { return capacity_; }

 private:
  BlockId block_of_(VertexId v) const {
    return v < assignment_.size() ? assignment_[v] : kNoBlock;
  }

  std::uint64_t capacity_ = 0;
  std::vector<BlockId> assignment_;      // vertex -> block (kNoBlock unset)
  std::vector<std::uint32_t> tally_;     // k-wide neighbour-count scratch
  std::vector<BlockId> touched_blocks_;  // which tallies to reset
  BoundedMinHeap<BlockId> heap_;
};

}  // namespace sp::stream
