#include "stream/sne.hpp"

#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::stream {

SnePartitioner::SnePartitioner(const StreamConfig& cfg)
    : StreamPartitioner(cfg),
      tally_(cfg.blocks, 0),
      heap_(cfg.candidates) {
  SP_ASSERT_MSG(cfg.num_vertices_hint > 0,
                "SNE needs num_vertices_hint to derive its block capacity");
  const std::uint64_t ideal =
      (cfg.num_vertices_hint + cfg.blocks - 1) / cfg.blocks;
  capacity_ = static_cast<std::uint64_t>(
      static_cast<double>(ideal) * (1.0 + cfg.capacity_slack));
  if (capacity_ < ideal) capacity_ = ideal;  // slack never shrinks a block
  assignment_.assign(cfg.num_vertices_hint, kNoBlock);
}

BlockId SnePartitioner::assign(VertexId v, std::span<const VertexId> nbrs) {
  SP_ASSERT_MSG(!finished(), "assign after finish()");
  if (v >= assignment_.size()) assignment_.resize(v + 1, kNoBlock);
  SP_ASSERT_MSG(assignment_[v] == kNoBlock,
                "vertex streamed twice in one pass");

  // Tally the blocks of already-placed neighbours (k-wide scratch, reset
  // via the touched list so the pass is O(deg), not O(k)).
  for (VertexId w : nbrs) {
    const BlockId b = block_of_(w);
    if (b == kNoBlock) continue;
    if (tally_[b] == 0) touched_blocks_.push_back(b);
    ++tally_[b];
  }

  const std::uint64_t vh = seeded_hash(v);
  const auto loads = block_vertices();

  // Stage 1: bounded heap keeps the top-C neighbour counts. The heap
  // ranks by raw count — the balance discount is applied in stage 2 so a
  // nearly-full block with many neighbours still competes on even terms
  // before the capacity check rejects it.
  heap_.clear();
  for (BlockId b : touched_blocks_) {
    heap_.push(static_cast<double>(tally_[b]), hash64(vh ^ b), b);
  }

  // Stage 2: balance-discounted score over the kept candidates, skipping
  // full blocks.
  BlockId best = kNoBlock;
  double best_score = -1.0;
  std::uint64_t best_tie = 0;
  for (const auto& cand : heap_.sorted_best_first()) {
    const BlockId b = cand.payload;
    if (loads[b] >= capacity_) continue;
    const double fill =
        static_cast<double>(loads[b]) / static_cast<double>(capacity_);
    const double score = static_cast<double>(tally_[b]) * (1.0 - fill);
    const std::uint64_t tie = hash64(vh ^ b);
    if (score > best_score ||
        (score == best_score && (tie < best_tie ||
                                 (tie == best_tie && b < best)))) {
      best = b;
      best_score = score;
      best_tie = tie;
    }
  }

  // Fallback: no placed neighbours, or every candidate block is full —
  // take the least-loaded block with capacity left (ties by seeded hash).
  if (best == kNoBlock) {
    std::uint64_t best_load = ~0ull;
    for (BlockId b = 0; b < blocks(); ++b) {
      if (loads[b] >= capacity_) continue;
      const std::uint64_t tie = hash64(vh ^ b);
      if (loads[b] < best_load ||
          (loads[b] == best_load && tie < best_tie)) {
        best = b;
        best_load = loads[b];
        best_tie = tie;
      }
    }
  }
  SP_ASSERT_MSG(best != kNoBlock,
                "all blocks at capacity: num_vertices_hint too small for "
                "the stream");

  for (BlockId b : touched_blocks_) tally_[b] = 0;
  touched_blocks_.clear();

  assignment_[v] = best;
  bump_degree(v);
  add_to_block(v, best);
  // Intra-block edges discovered at assign time (each counted once, when
  // its second endpoint lands).
  for (VertexId w : nbrs) {
    if (block_of_(w) == best && w != v) count_edge(best);
  }
  count_item();
  return best;
}

}  // namespace sp::stream
