#include "stream/online_assignment.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace sp::stream {

OnlineAssignment::OnlineAssignment(std::uint32_t blocks)
    : blocks_(blocks), shards_(kShards) {
  SP_ASSERT(blocks >= 1);
}

void OnlineAssignment::record_vertex(VertexId v, BlockId b) {
  SP_ASSERT(b < blocks_);
  add_(v, b);
  records_.fetch_add(1, std::memory_order_release);
}

void OnlineAssignment::record_edge(VertexId u, VertexId v, BlockId b) {
  SP_ASSERT(b < blocks_);
  add_(u, b);
  add_(v, b);
  records_.fetch_add(1, std::memory_order_release);
}

void OnlineAssignment::add_(VertexId v, BlockId b) {
  Shard& s = shard_(v);
  std::lock_guard<std::mutex> lock(s.mu);
  Entry& e = s.map[v];
  if (e.primary == kNoBlock) e.primary = b;
  auto it = std::lower_bound(e.block_ids.begin(), e.block_ids.end(), b);
  if (it == e.block_ids.end() || *it != b) e.block_ids.insert(it, b);
}

OnlineAssignment::Lookup OnlineAssignment::lookup(VertexId v) const {
  const Shard& s = shard_(v);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(v);
  if (it == s.map.end()) return Lookup{};
  return Lookup{true, it->second.primary,
                static_cast<std::uint32_t>(it->second.block_ids.size())};
}

std::vector<BlockId> OnlineAssignment::replicas(VertexId v) const {
  const Shard& s = shard_(v);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(v);
  if (it == s.map.end()) return {};
  return it->second.block_ids;
}

}  // namespace sp::stream
