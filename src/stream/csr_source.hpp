// Streaming adapters over graph::CsrGraph: replay any materialised graph
// (every generator output, every test graph) as a deterministic edge or
// vertex stream.
//
// Stream order is the graph::gen seeded permutation (EdgePermutation /
// vertex_permutation), so it is reproducible and independent of CSR
// construction order — the property the cross-thread bit-identity tests
// and the committed bench baselines rest on. A source is the pipeline's
// *reader* stage: fill() is called from the reader thread only.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "graph/generators.hpp"
#include "stream/chunk.hpp"

namespace sp::stream {

struct SourceOptions {
  /// Items (edges or vertices) per chunk.
  std::uint32_t chunk_size = 4096;
  /// Stream-order seed (independent of the partitioner's placement seed).
  std::uint64_t order_seed = 1;
};

class CsrEdgeSource {
 public:
  CsrEdgeSource(const graph::CsrGraph& g, const SourceOptions& opt);

  /// Fills `chunk` with the next run of edges; false at end of stream
  /// (chunk left empty). Reader-thread only.
  bool fill(EdgeChunk& chunk);

  std::uint64_t total_edges() const { return perm_.size(); }

 private:
  graph::gen::EdgePermutation perm_;
  std::uint32_t chunk_size_;
};

class CsrVertexSource {
 public:
  CsrVertexSource(const graph::CsrGraph& g, const SourceOptions& opt);

  /// Reader stage: fills only `chunk.vertices` (next run of the seeded
  /// vertex permutation); false at end of stream.
  bool fill(VertexChunk& chunk);

  /// Prep stage: copies each chunk vertex's adjacency out of the CSR into
  /// the chunk (pure reads on the shared graph — safe from any number of
  /// worker threads concurrently).
  void materialize(VertexChunk& chunk) const;

  graph::VertexId total_vertices() const {
    return static_cast<graph::VertexId>(order_.size());
  }

 private:
  const graph::CsrGraph& g_;
  std::vector<graph::VertexId> order_;
  std::uint32_t chunk_size_;
  std::size_t pos_ = 0;
};

}  // namespace sp::stream
