// Chunk structs that travel the stream pipeline, and the ChunkPool they
// recycle through.
//
// A chunk is a few thousand stream items plus the worker-stage scratch
// (precomputed endpoint hashes). Chunks are acquired from the pool by the
// reader, filled, prepped by a worker, consumed in order by the writer
// stage, and released back — comm::BufferArena's acquire/release idiom,
// except this pool is shared across pipeline threads and therefore
// internally locked (the arena can stay lock-free because engine arenas
// are rank-confined; pipeline chunks by construction cross threads).
// Steady-state streaming allocates nothing once the first
// queue-capacity's worth of chunks exists.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "stream/stream_partitioner.hpp"

namespace sp::stream {

/// A run of edges in stream order. `uhash`/`vhash` inside each StreamEdge
/// start 0 from the reader and are filled by the prep stage.
struct EdgeChunk {
  std::uint64_t index = 0;  // position in the stream (reorder key)
  std::vector<StreamEdge> edges;

  void reset(std::uint64_t idx) {
    index = idx;
    edges.clear();
  }
  std::size_t items() const { return edges.size(); }
};

/// A run of vertices with their adjacency, CSR-style: vertex i of the
/// chunk owns neighbors[offsets[i] .. offsets[i+1]). The reader fills
/// only `vertices`; offsets/neighbors are the prep stage's output
/// (adjacency materialisation is the parallelisable part of vertex
/// streaming).
struct VertexChunk {
  std::uint64_t index = 0;
  std::vector<VertexId> vertices;
  std::vector<std::uint32_t> offsets;  // vertices.size() + 1 entries
  std::vector<VertexId> neighbors;

  void reset(std::uint64_t idx) {
    index = idx;
    vertices.clear();
    offsets.clear();
    neighbors.clear();
  }
  std::size_t items() const { return vertices.size(); }
};

/// LIFO free list of chunks, shared by the pipeline threads. acquire()
/// reuses the most recently released chunk (its vectors keep their
/// capacity); the pool is capped so a stall cannot hoard memory.
template <typename ChunkT>
class ChunkPool {
 public:
  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;  // served from the free list

    double hit_rate() const {
      return acquires == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(acquires);
    }
  };

  ChunkT acquire(std::uint64_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.acquires;
    if (!free_.empty()) {
      ++stats_.hits;
      ChunkT c = std::move(free_.back());
      free_.pop_back();
      c.reset(index);
      return c;
    }
    ChunkT c;
    c.reset(index);
    return c;
  }

  void release(ChunkT&& c) {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < kMaxPooled) free_.push_back(std::move(c));
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  std::size_t pooled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  static constexpr std::size_t kMaxPooled = 64;

  mutable std::mutex mu_;
  std::vector<ChunkT> free_;
  Stats stats_;
};

}  // namespace sp::stream
