// DBH — Degree-Based Hashing (Xie et al., NIPS'14): stateless-placement
// streaming *edge* partitioning.
//
// Edge {u,v} is placed by hashing the endpoint with the *smaller* partial
// degree: hubs (high degree) get replicated across many blocks, low-degree
// vertices stay whole — the same "cut the hubs" intuition as HDRF but with
// O(1) placement and no balance feedback. That makes DBH the throughput
// and simplicity baseline: balance comes only from hash uniformity, and on
// skewed streams its replication factor trails HDRF's. Placement depends
// only on (seed, vertex id, partial degrees), so a fixed stream order is
// bit-reproducible.
#pragma once

#include "stream/stream_partitioner.hpp"

namespace sp::stream {

class DbhPartitioner final : public StreamPartitioner {
 public:
  explicit DbhPartitioner(const StreamConfig& cfg) : StreamPartitioner(cfg) {}

  std::string_view name() const override { return "dbh"; }
  StreamMode mode() const override { return StreamMode::kEdge; }

  BlockId assign(const StreamEdge& e) override;
};

}  // namespace sp::stream
