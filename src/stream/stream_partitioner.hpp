// sp::stream — single-pass streaming partitioners.
//
// The multilevel pipeline (core/scalapart.cpp) materialises the whole
// graph before it cuts; this subsystem covers the complementary workload:
// graphs that arrive as unbounded edge (or vertex) streams and partition
// assignments that must be queryable while ingest is still running. Each
// partitioner sees every stream item exactly once, keeps O(N + k) state
// (partial degrees, replica tables, block loads) and never revisits a
// decision — the PARSA/PowerGraph family of algorithms.
//
// Two models share one interface:
//  - *edge partitioners* (HDRF, DBH) assign each EDGE to a block; a vertex
//    is replicated into every block that holds one of its edges (vertex
//    cut). Quality: replication factor + edge balance
//    (graph::analyze_vertex_cut).
//  - *vertex partitioners* (SNE) assign each VERTEX to a block (edge cut).
//    Quality: cut + vertex balance (graph::analyze_partition).
//
// Determinism contract: assign() is a pure function of (partitioner state,
// item, seed). All tie-breaking is by seeded hash (support/random.hpp
// hash64), never by wall time, pointer values, or container order — so a
// fixed (stream order, seed) pair yields bit-identical assignments
// regardless of how the feeding pipeline is threaded (see pipeline.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/csr_graph.hpp"

namespace sp::stream {

using graph::VertexId;
using graph::Weight;
using BlockId = std::uint32_t;

inline constexpr BlockId kNoBlock = static_cast<BlockId>(-1);

/// One streamed edge. `uhash`/`vhash` are the seeded endpoint hashes
/// (hash64(seed ^ id)) the partitioners use for placement and
/// tie-breaking; they are precomputed by the pipeline's worker stage (a
/// pure per-item computation, safe to parallelise) but assign() recomputes
/// them when zero so hand-fed edges work too.
struct StreamEdge {
  VertexId u = 0;
  VertexId v = 0;
  std::uint64_t uhash = 0;
  std::uint64_t vhash = 0;
};

enum class StreamMode : std::uint8_t { kEdge, kVertex };

struct StreamConfig {
  /// Number of blocks (k).
  std::uint32_t blocks = 8;
  /// Seed for every hash-based placement and tie-break decision.
  std::uint64_t seed = 1;
  /// HDRF balance weight (λ). 1.0 reproduces plain "highest degree
  /// replicated first"; larger values trade replication for balance.
  double lambda = 1.1;
  /// HDRF balance-term denominator slack (ε in the paper's C_BAL).
  double epsilon = 1.0;
  /// SNE: hard per-block vertex capacity slack — a block never holds more
  /// than (1 + capacity_slack) * ceil(n / k) vertices.
  double capacity_slack = 0.05;
  /// SNE: bounded candidate-heap width (top-C neighbour blocks scored).
  std::uint32_t candidates = 8;
  /// Expected vertex-id upper bound; tables are pre-sized to it and grow
  /// on demand beyond (0 = grow from empty). SNE requires a positive hint
  /// to derive its capacity.
  VertexId num_vertices_hint = 0;
};

/// Common interface + shared per-vertex/per-block tables of the streaming
/// partitioners. Not thread-safe by design: the pipeline funnels all
/// assign() calls through one sequential consumer stage (that is what
/// makes the output independent of worker-thread timing); concurrent
/// *lookup* of finished assignments is OnlineAssignment's job.
class StreamPartitioner {
 public:
  explicit StreamPartitioner(const StreamConfig& cfg);
  virtual ~StreamPartitioner() = default;
  StreamPartitioner(const StreamPartitioner&) = delete;
  StreamPartitioner& operator=(const StreamPartitioner&) = delete;

  virtual std::string_view name() const = 0;
  virtual StreamMode mode() const = 0;

  /// Edge partitioners: the block for this edge. SP_ASSERTs on vertex
  /// partitioners.
  virtual BlockId assign(const StreamEdge& e);

  /// Vertex partitioners: the block for vertex `v` given its adjacency.
  /// SP_ASSERTs on edge partitioners.
  virtual BlockId assign(VertexId v, std::span<const VertexId> neighbors);

  /// End of stream. Idempotent; assign() must not be called afterwards.
  virtual void finish();
  bool finished() const { return finished_; }

  const StreamConfig& config() const { return cfg_; }
  std::uint32_t blocks() const { return cfg_.blocks; }

  /// Edges per block (edge partitioners count assignments; vertex
  /// partitioners count intra-block edges discovered at assign time).
  std::span<const std::uint64_t> block_edges() const { return block_edges_; }
  /// Vertices per block: replicas for edge partitioners, owned vertices
  /// for vertex partitioners.
  std::span<const std::uint64_t> block_vertices() const {
    return block_vertices_;
  }

  /// Number of blocks vertex `v` is present in (0 = never seen).
  std::uint32_t replicas(VertexId v) const;
  std::uint64_t total_replicas() const { return total_replicas_; }
  /// Vertices seen in at least one stream item.
  VertexId touched_vertices() const { return touched_vertices_; }
  /// Mean replicas per touched vertex (the streaming headline metric).
  double replication_factor() const;
  std::uint64_t assigned_items() const { return assigned_items_; }

  /// Vertex partitioners: the per-vertex block table (indexed by vertex
  /// id, kNoBlock = unassigned). Empty span for edge partitioners.
  virtual std::span<const BlockId> vertex_assignment() const { return {}; }

  /// Seeded endpoint hash — public because it doubles as the pipeline
  /// worker-stage precomputation (pure function of (seed, id): safe to
  /// call concurrently with anything).
  std::uint64_t seeded_hash(VertexId v) const;

 protected:
  /// Partial degree of `v` (count of stream items it appeared in so far).
  std::uint32_t partial_degree(VertexId v) const;
  void bump_degree(VertexId v);

  bool in_block(VertexId v, BlockId b) const;
  /// Inserts v into b's replica set; updates block/replica accounting.
  void add_to_block(VertexId v, BlockId b);

  void count_edge(BlockId b) { ++block_edges_[b]; }
  void count_item() { ++assigned_items_; }

  StreamConfig cfg_;

 private:
  void ensure_vertex_(VertexId v);

  std::size_t words_per_vertex_;
  std::vector<std::uint64_t> replica_bits_;  // n * words_per_vertex_
  std::vector<std::uint32_t> degree_;        // partial degrees
  std::vector<std::uint64_t> block_edges_;
  std::vector<std::uint64_t> block_vertices_;
  std::uint64_t total_replicas_ = 0;
  std::uint64_t assigned_items_ = 0;
  VertexId touched_vertices_ = 0;
  bool finished_ = false;
};

/// Order-sensitive 64-bit digest of an assignment sequence — the
/// determinism fingerprint benches and tests compare across pipeline
/// worker counts (and bench_gate compares across CI runs, as part_fp).
std::uint64_t assignment_fingerprint(std::span<const BlockId> assignment);

}  // namespace sp::stream
