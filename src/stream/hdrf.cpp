#include "stream/hdrf.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::stream {

BlockId HdrfPartitioner::assign(const StreamEdge& e) {
  SP_ASSERT_MSG(!finished(), "assign after finish()");
  SP_ASSERT_MSG(e.u != e.v, "self loop in edge stream");
  bump_degree(e.u);
  bump_degree(e.v);
  const double du = partial_degree(e.u);
  const double dv = partial_degree(e.v);
  const double theta_u = du / (du + dv);
  const double theta_v = 1.0 - theta_u;

  const auto loads = block_edges();
  const std::uint64_t maxload =
      *std::max_element(loads.begin(), loads.end());
  const std::uint64_t minload =
      *std::min_element(loads.begin(), loads.end());
  const double spread =
      cfg_.epsilon + static_cast<double>(maxload - minload);

  const std::uint64_t uh = e.uhash != 0 ? e.uhash : seeded_hash(e.u);
  const std::uint64_t vh = e.vhash != 0 ? e.vhash : seeded_hash(e.v);

  BlockId best = 0;
  double best_score = -1.0;
  std::uint64_t best_tie = 0;
  for (BlockId p = 0; p < blocks(); ++p) {
    double rep = 0.0;
    if (in_block(e.u, p)) rep += 1.0 + (1.0 - theta_u);
    if (in_block(e.v, p)) rep += 1.0 + (1.0 - theta_v);
    const double bal =
        static_cast<double>(maxload - loads[p]) / spread;
    const double score = rep + cfg_.lambda * bal;
    // Seeded deterministic tie-break: equal scores resolve by the hash of
    // (edge, block), so ties spread across blocks but never depend on
    // evaluation order or prior runs.
    const std::uint64_t tie = hash64(uh ^ (vh << 1) ^ p);
    if (score > best_score ||
        (score == best_score && (tie < best_tie ||
                                 (tie == best_tie && p < best)))) {
      best = p;
      best_score = score;
      best_tie = tie;
    }
  }
  add_to_block(e.u, best);
  add_to_block(e.v, best);
  count_edge(best);
  count_item();
  return best;
}

}  // namespace sp::stream
