// Bounded min-heap of the top-C scored candidates.
//
// SNE scores candidate blocks by neighbour count; with large k only a
// handful of blocks can matter, so candidates flow through a fixed-width
// min-heap (the heap root is the *worst* kept candidate and is evicted
// when something better arrives) and the final balance-aware scoring pass
// touches at most C entries instead of k. Comparison is on (score, tie)
// pairs so the kept set — and therefore the assignment — is a pure
// function of the inputs, never of push order: `tie` must be a total
// order among candidates (sp::stream uses seeded hashes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace sp::stream {

template <typename PayloadT>
class BoundedMinHeap {
 public:
  struct Entry {
    double score = 0.0;
    std::uint64_t tie = 0;
    PayloadT payload{};

    /// Total order: lower score is "worse"; the tie hash breaks score
    /// equality both for eviction and for the sorted view.
    bool worse_than(const Entry& o) const {
      return score != o.score ? score < o.score : tie > o.tie;
    }
  };

  explicit BoundedMinHeap(std::uint32_t capacity) : cap_(capacity) {
    SP_ASSERT(capacity >= 1);
    heap_.reserve(capacity);
  }

  std::uint32_t capacity() const { return cap_; }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  void clear() { heap_.clear(); }

  /// Inserts unless the heap is full of strictly better entries (then the
  /// candidate is dropped); evicts the current worst when full.
  void push(double score, std::uint64_t tie, PayloadT payload) {
    Entry e{score, tie, std::move(payload)};
    if (heap_.size() < cap_) {
      heap_.push_back(std::move(e));
      std::push_heap(heap_.begin(), heap_.end(), by_better_);
      return;
    }
    if (heap_.front().worse_than(e)) {
      std::pop_heap(heap_.begin(), heap_.end(), by_better_);
      heap_.back() = std::move(e);
      std::push_heap(heap_.begin(), heap_.end(), by_better_);
    }
  }

  /// Kept candidates, best first (sorts in place; call once when done).
  std::span<const Entry> sorted_best_first() {
    std::sort(heap_.begin(), heap_.end(),
              [](const Entry& a, const Entry& b) { return b.worse_than(a); });
    return heap_;
  }

 private:
  // std::push_heap with this comparator keeps the *worst* entry at the
  // root, which is what a bounded top-C filter evicts.
  static bool better_(const Entry& a, const Entry& b) {
    return b.worse_than(a);
  }
  static constexpr auto by_better_ = [](const Entry& a, const Entry& b) {
    return better_(a, b);
  };

  std::uint32_t cap_;
  std::vector<Entry> heap_;
};

}  // namespace sp::stream
