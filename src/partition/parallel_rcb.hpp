// Parallel recursive coordinate bisection (single cut), Zoltan-style.
//
// The graph is block-distributed; each rank holds its slice of the input
// coordinates. One bisection requires: a bounding-box reduction (pick the
// wider axis), a sampled median (one allgather of a few thousand scalars),
// and a final halo exchange + reduction to evaluate the cut — the same
// communication pattern Zoltan's RCB uses per level, which is why the
// paper's Figure 4 shows it as the fastest (and lowest-quality) scheme.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/engine.hpp"
#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"
#include "graph/distributed_graph.hpp"

namespace sp::partition {

struct ParallelRcbOptions {
  /// Bisection rounds of the iterative median search (Zoltan-style); each
  /// round is one counting reduction.
  std::uint32_t median_rounds = 40;
  std::uint64_t seed = 5;
};

struct ParallelRcbResult {
  /// Side per owned vertex of the rank's block.
  std::vector<std::uint8_t> side;
  graph::Weight cut = 0;
};

/// SPMD: rank r owns the block [view.global_begin(), view.global_end());
/// `coords` is the full coordinate array but each rank reads only its
/// block plus the ghost entries it pays to exchange.
ParallelRcbResult parallel_rcb(comm::Comm& comm,
                               const graph::LocalView& view,
                               std::span<const geom::Vec2> coords,
                               const ParallelRcbOptions& opt);

}  // namespace sp::partition
