// Common result types for the partitioners.
//
// Every scheme in the evaluation (RCB, G30/G7/G7-NL, ParMetis-like,
// Pt-Scotch-like, ScalaPart) produces a Bipartition plus a quality report;
// schemes that run under the BSP runtime additionally report modeled
// parallel time through comm::CommTrace (see src/comm).
#pragma once

#include <string>

#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"

namespace sp::partition {

struct PartitionResult {
  graph::Bipartition part;
  graph::PartitionReport report;
  /// Wall-clock seconds of the sequential computation (for reference; the
  /// scaling figures use modeled time, not this).
  double seconds = 0.0;
  std::string method;
};

}  // namespace sp::partition
