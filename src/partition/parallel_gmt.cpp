#include "partition/parallel_gmt.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "geometry/sphere.hpp"
#include "obs/span.hpp"
#include "refine/fm.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::partition {

using geom::Vec2;
using geom::Vec3;
using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

namespace {

double jitter_of(VertexId v) {
  return (static_cast<double>(hash64(v) >> 11) * 0x1.0p-53 - 0.5) * 1e-9;
}

/// Deterministic local sample of up to `quota` indices from [0, n).
std::vector<std::uint32_t> sample_indices(std::size_t n, std::size_t quota,
                                          std::uint64_t seed) {
  std::vector<std::uint32_t> out;
  if (n == 0 || quota == 0) return out;
  if (n <= quota) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint32_t>(i);
    return out;
  }
  Rng rng(seed);
  out.reserve(quota);
  for (std::size_t k = 0; k < quota; ++k) {
    out.push_back(static_cast<std::uint32_t>(rng.below(n)));
  }
  return out;
}

struct StripRecord {
  VertexId id;
  std::uint8_t side;
  std::uint8_t movable;
};

}  // namespace

ParallelGmtResult parallel_gmt(comm::Comm& comm, const CsrGraph& g,
                               const embed::RankEmbedding& emb,
                               const ParallelGmtOptions& opt) {
  const std::uint32_t me = comm.rank();
  const std::size_t n_local = emb.owned.size();
  ParallelGmtResult result;
  result.side.assign(n_local, 0);

  // ---- Normalisation: global centroid and RMS radius (2 reductions). ----
  double sums[3] = {static_cast<double>(n_local), 0.0, 0.0};
  for (const Vec2& p : emb.pos) {
    sums[1] += p[0];
    sums[2] += p[1];
  }
  auto tot = comm.allreduce_vec(std::span<const double>(sums, 3),
                                comm::ReduceOp::kSum);
  const double n_global = std::max(tot[0], 1.0);
  Vec2 centroid = geom::vec2(tot[1] / n_global, tot[2] / n_global);
  double sq = 0.0;
  for (const Vec2& p : emb.pos) sq += geom::distance2(p, centroid);
  double rms_sq = comm.allreduce(sq, comm::ReduceOp::kSum) / n_global;
  double inv_scale = rms_sq > 1e-300 ? 1.0 / std::sqrt(rms_sq) : 1.0;
  comm.add_compute(static_cast<double>(n_local) * 4.0);

  // ---- Lift owned and ghost points to the sphere. ----
  std::vector<Vec3> lifted(n_local);
  for (std::size_t i = 0; i < n_local; ++i) {
    lifted[i] = geom::stereo_up((emb.pos[i] - centroid) * inv_scale);
  }
  std::vector<Vec3> ghost_lifted(emb.ghost_ids.size());
  for (std::size_t i = 0; i < emb.ghost_ids.size(); ++i) {
    ghost_lifted[i] = geom::stereo_up((emb.ghost_pos[i] - centroid) * inv_scale);
  }
  comm.add_compute(static_cast<double>(n_local + emb.ghost_ids.size()) * 8.0);

  // ---- Centerpoint from a cross-rank sample (1 allgather). ----
  // Quotas proportional to local ownership: lattice cells hold very uneven
  // vertex counts, and equal per-rank quotas would bias the sample (and
  // with it the centerpoint and every median below) toward sparse cells.
  auto proportional_quota = [&](std::size_t total_target) {
    return static_cast<std::size_t>(
               std::ceil(static_cast<double>(total_target) *
                         static_cast<double>(n_local) / n_global)) +
           (n_local > 0 ? 1 : 0);
  };
  const std::size_t quota = proportional_quota(opt.centerpoint_sample);
  std::vector<Vec3> my_sample;
  for (std::uint32_t i : sample_indices(n_local, quota, opt.seed ^ me)) {
    my_sample.push_back(lifted[i]);
  }
  auto sample = comm.allgatherv(std::span<const Vec3>(my_sample));
  Rng cp_rng(opt.seed ^ 0xCE27E9ull);  // same stream on every rank
  Vec3 cp = sample.empty()
                ? Vec3{}
                : geom::approximate_centerpoint(sample, cp_rng, sample.size());
  if (cp.norm() >= 0.999) cp = cp * (0.999 / cp.norm());
  geom::ConformalMap map(cp);
  comm.add_compute(static_cast<double>(sample.size()) * 50.0);

  for (Vec3& p : lifted) p = map.apply(p);
  for (Vec3& p : ghost_lifted) p = map.apply(p);
  comm.add_compute(static_cast<double>(n_local + ghost_lifted.size()) * 12.0);

  // ---- Candidate great circles (same streams everywhere). ----
  const std::uint32_t tries =
      opt.gmt.circles_per_centerpoint * opt.gmt.num_centerpoints;
  SP_ASSERT_MSG(tries > 0, "SP-PG7-NL needs at least one great circle");
  Rng dir_rng(opt.seed ^ 0xD12Cull);
  std::vector<Vec3> normals(tries);
  for (auto& u : normals) u = geom::random_unit_vector(dir_rng);

  // s values per (try, vertex).
  std::vector<std::vector<double>> s(tries, std::vector<double>(n_local));
  std::vector<std::vector<double>> s_ghost(
      tries, std::vector<double>(ghost_lifted.size()));
  for (std::uint32_t t = 0; t < tries; ++t) {
    for (std::size_t i = 0; i < n_local; ++i) {
      s[t][i] = normals[t].dot(lifted[i]) + jitter_of(emb.owned[i]);
    }
    for (std::size_t i = 0; i < ghost_lifted.size(); ++i) {
      s_ghost[t][i] = normals[t].dot(ghost_lifted[i]) + jitter_of(emb.ghost_ids[i]);
    }
  }
  comm.add_compute(static_cast<double>(tries) *
                   static_cast<double>(n_local + ghost_lifted.size()) * 4.0);

  // ---- Median thresholds from one combined sample allgather. ----
  const std::size_t med_quota = proportional_quota(opt.median_sample);
  auto med_idx = sample_indices(n_local, med_quota, opt.seed ^ (me * 77ull));
  std::vector<double> med_out;
  med_out.reserve(tries * med_idx.size());
  for (std::uint32_t t = 0; t < tries; ++t) {
    for (std::uint32_t i : med_idx) med_out.push_back(s[t][i]);
  }
  // Variable contributions per rank: tag each value with its try index by
  // interleaving blocks; simplest robust layout is (try, value) pairs.
  struct TryValue {
    std::uint32_t t;
    double v;
  };
  std::vector<TryValue> med_pairs;
  med_pairs.reserve(med_out.size());
  {
    std::size_t k = 0;
    for (std::uint32_t t = 0; t < tries; ++t) {
      for (std::size_t i = 0; i < med_idx.size(); ++i, ++k) {
        med_pairs.push_back({t, med_out[k]});
      }
    }
  }
  auto med_all = comm.allgatherv(std::span<const TryValue>(med_pairs));
  std::vector<double> threshold(tries, 0.0);
  {
    std::vector<std::vector<double>> per_try(tries);
    for (const TryValue& tv : med_all) per_try[tv.t].push_back(tv.v);
    for (std::uint32_t t = 0; t < tries; ++t) {
      auto& vals = per_try[t];
      SP_ASSERT(!vals.empty());
      auto mid = vals.begin() + static_cast<std::ptrdiff_t>(vals.size() / 2);
      std::nth_element(vals.begin(), mid, vals.end());
      threshold[t] = *mid;
    }
    comm.add_compute(static_cast<double>(med_all.size()) * 2.0);
  }

  // ---- Local cut and balance contributions; one reduction picks best. ----
  std::unordered_map<VertexId, std::uint32_t> ghost_of;
  ghost_of.reserve(emb.ghost_ids.size());
  for (std::uint32_t i = 0; i < emb.ghost_ids.size(); ++i) {
    ghost_of[emb.ghost_ids[i]] = i;
  }
  std::unordered_map<VertexId, std::uint32_t> local_of;
  local_of.reserve(n_local);
  for (std::uint32_t i = 0; i < n_local; ++i) local_of[emb.owned[i]] = i;

  std::vector<double> contrib(tries * 3, 0.0);  // (cut2, w0, w1) per try
  double arc_work = 0.0;
  for (std::uint32_t t = 0; t < tries; ++t) {
    for (std::size_t i = 0; i < n_local; ++i) {
      VertexId v = emb.owned[i];
      bool side_v = s[t][i] > threshold[t];
      contrib[3 * t + (side_v ? 2 : 1)] +=
          static_cast<double>(g.vertex_weight(v));
      auto nbrs = g.neighbors(v);
      auto ws = g.edge_weights_of(v);
      arc_work += static_cast<double>(nbrs.size());
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        VertexId u = nbrs[k];
        double su;
        auto it_local = local_of.find(u);
        if (it_local != local_of.end()) {
          su = s[t][it_local->second];
        } else {
          auto it_ghost = ghost_of.find(u);
          SP_ASSERT(it_ghost != ghost_of.end());
          su = s_ghost[t][it_ghost->second];
        }
        if (side_v != (su > threshold[t])) {
          contrib[3 * t] += static_cast<double>(ws[k]);  // counted twice total
        }
      }
    }
  }
  comm.add_compute(arc_work * 2.0);
  auto totals = comm.allreduce_vec(std::span<const double>(contrib),
                                   comm::ReduceOp::kSum);
  std::uint32_t best_t = 0;
  double best_cut = std::numeric_limits<double>::max();
  for (std::uint32_t t = 0; t < tries; ++t) {
    double cut = totals[3 * t] / 2.0;
    if (cut < best_cut) {
      best_cut = cut;
      best_t = t;
    }
  }
  result.cut_before_refine = static_cast<Weight>(std::llround(best_cut));
  result.cut = result.cut_before_refine;
  obs::gauge(comm, "partition/tries", static_cast<double>(tries));
  obs::gauge(comm, "partition/cut_before_refine", best_cut);
  for (std::size_t i = 0; i < n_local; ++i) {
    result.side[i] = s[best_t][i] > threshold[best_t] ? 1 : 0;
  }

  if (!opt.strip_refine) return result;

  // ---- Strip-FM refinement. ----
  // Strip width: pick |margin| quantile so that ~strip_factor * |boundary|
  // vertices fall inside. Boundary size comes from the winning try's cut
  // structure (endpoints of cut edges).
  double local_boundary = 0.0;
  for (std::size_t i = 0; i < n_local; ++i) {
    VertexId v = emb.owned[i];
    bool side_v = result.side[i] != 0;
    for (VertexId u : g.neighbors(v)) {
      double su;
      auto it_local = local_of.find(u);
      if (it_local != local_of.end()) {
        su = s[best_t][it_local->second];
      } else {
        su = s_ghost[best_t][ghost_of.at(u)];
      }
      if (side_v != (su > threshold[best_t])) {
        local_boundary += 1.0;
        break;
      }
    }
  }
  double boundary_total =
      comm.allreduce(local_boundary, comm::ReduceOp::kSum);
  // The strip must stay a small multiple of the separator — cap it at 12%
  // of the graph (and the collar at 30%) so the "negligible cost" claim of
  // the paper holds even when the separator is large relative to N (on
  // scaled-down graphs |S|/N is much larger than at the paper's sizes).
  double target = std::min(0.12 * n_global,
                           std::max(64.0, opt.strip_factor * boundary_total));

  // Sampled quantiles of |margin| for the strip and the collar widths.
  std::vector<double> margin_sample;
  for (std::uint32_t i : med_idx) {
    margin_sample.push_back(std::abs(s[best_t][i] - threshold[best_t]));
  }
  auto all_margins = comm.allgatherv(std::span<const double>(margin_sample));
  double strip_width = 0.0;
  double collar_width = 0.0;
  if (!all_margins.empty()) {
    auto quantile = [&](double frac) {
      frac = std::clamp(frac, 0.0, 1.0);
      auto kth =
          all_margins.begin() +
          static_cast<std::ptrdiff_t>(std::min(
              all_margins.size() - 1,
              static_cast<std::size_t>(
                  frac * static_cast<double>(all_margins.size()))));
      std::nth_element(all_margins.begin(), kth, all_margins.end());
      return *kth;
    };
    double strip_frac = target / n_global;
    strip_width = quantile(strip_frac);
    collar_width =
        quantile(std::min(opt.collar_factor * strip_frac, 0.30));
  }

  // Ship (id, side, movable) for vertices within the collar to rank 0.
  std::vector<StripRecord> ship;
  for (std::size_t i = 0; i < n_local; ++i) {
    double m = std::abs(s[best_t][i] - threshold[best_t]);
    if (m <= collar_width) {
      ship.push_back({emb.owned[i], result.side[i],
                      static_cast<std::uint8_t>(m <= strip_width ? 1 : 0)});
    }
  }
  auto strip_all = comm.gatherv(std::span<const StripRecord>(ship), 0);

  // Rank 0 refines the strip-induced subgraph and reports the flips.
  std::vector<VertexId> flipped;
  double delta_cut = 0.0;
  if (me == 0 && strip_all.size() > 1) {
    std::vector<VertexId> ids(strip_all.size());
    for (std::size_t i = 0; i < strip_all.size(); ++i) ids[i] = strip_all[i].id;
    std::vector<VertexId> old_to_new;
    graph::CsrGraph sub = graph::induced_subgraph(g, ids, &old_to_new);
    graph::Bipartition part(sub.num_vertices());
    std::vector<VertexId> movable;
    std::size_t movable_count = 0;
    for (std::size_t i = 0; i < strip_all.size(); ++i) {
      part[static_cast<VertexId>(i)] = strip_all[i].side;
      if (strip_all[i].movable) {
        movable.push_back(static_cast<VertexId>(i));
        ++movable_count;
      }
    }
    result.strip_size = movable_count;
    // Translate the global balance window into absolute caps on the strip:
    // global side weights are known from the winning try's reduction, and
    // vertices outside the strip cannot move, so each strip side may grow
    // only until the *global* side hits (1+eps) * total/2.
    const double global_w0 = totals[3 * best_t + 1];
    const double global_w1 = totals[3 * best_t + 2];
    auto [sub_w0, sub_w1] = graph::side_weights(sub, part);
    const double global_cap =
        (1.0 + opt.epsilon) * (global_w0 + global_w1) / 2.0;
    refine::FmOptions fm_opt;
    fm_opt.side0_cap = static_cast<Weight>(std::max(
        0.0, global_cap - (global_w0 - static_cast<double>(sub_w0))));
    fm_opt.side1_cap = static_cast<Weight>(std::max(
        0.0, global_cap - (global_w1 - static_cast<double>(sub_w1))));
    fm_opt.max_passes = 8;
    auto fm = refine::fm_refine(sub, part, fm_opt, movable);
    delta_cut = static_cast<double>(fm.final_cut - fm.initial_cut);
    for (std::size_t i = 0; i < strip_all.size(); ++i) {
      if (part[static_cast<VertexId>(i)] != strip_all[i].side) {
        flipped.push_back(strip_all[i].id);
      }
    }
    // FM touches the movable vertices' incident arcs a handful of times
    // per pass; the collar's extra vertices only sit in the gain terms.
    double movable_arcs = static_cast<double>(movable.size()) *
                          std::max(1.0, static_cast<double>(sub.num_arcs()) /
                                            std::max<std::size_t>(
                                                sub.num_vertices(), 1));
    comm.add_compute(movable_arcs * 8.0);
  }

  // Broadcast flips and the cut delta; owners apply.
  auto flips = comm.broadcast_vec(std::span<const VertexId>(flipped), 0);
  delta_cut = comm.broadcast(delta_cut, 0);
  for (VertexId v : flips) {
    auto it = local_of.find(v);
    if (it != local_of.end()) {
      result.side[it->second] = static_cast<std::uint8_t>(1 - result.side[it->second]);
    }
  }
  result.cut = static_cast<Weight>(std::llround(best_cut + delta_cut));
  result.strip_size = static_cast<std::size_t>(
      comm.broadcast(static_cast<std::uint64_t>(result.strip_size), 0));
  // The strip FM delta is exact only for edges inside the shipped collar;
  // recompute the true cut with one halo exchange + reduction.
  result.cut = distributed_cut(comm, g, emb, result.side);
  obs::gauge(comm, "partition/strip_size",
             static_cast<double>(result.strip_size));
  obs::gauge(comm, "partition/strip_flips", static_cast<double>(flips.size()));
  obs::gauge(comm, "partition/cut", static_cast<double>(result.cut));
  return result;
}

graph::Weight distributed_cut(comm::Comm& comm, const CsrGraph& g,
                              const embed::RankEmbedding& emb,
                              std::span<const std::uint8_t> side) {
  SP_ASSERT(side.size() == emb.owned.size());
  std::unordered_map<VertexId, std::uint32_t> local_of;
  local_of.reserve(emb.owned.size());
  for (std::uint32_t i = 0; i < emb.owned.size(); ++i) {
    local_of[emb.owned[i]] = i;
  }
  std::unordered_map<VertexId, std::uint32_t> ghost_of;
  ghost_of.reserve(emb.ghost_ids.size());
  for (std::uint32_t i = 0; i < emb.ghost_ids.size(); ++i) {
    ghost_of[emb.ghost_ids[i]] = i;
  }

  // Who ghosts my vertices: owner(u) for every ghost u adjacent to owned v
  // needs (v, side_v). Deduplicate per destination.
  struct SideMsg {
    VertexId id;
    std::uint32_t side;
  };
  std::vector<std::vector<SideMsg>> by_dest(comm.nranks());
  std::vector<std::uint32_t> last_sent(emb.owned.size(), comm.rank());
  for (std::uint32_t i = 0; i < emb.owned.size(); ++i) {
    for (VertexId u : g.neighbors(emb.owned[i])) {
      auto it = ghost_of.find(u);
      if (it == ghost_of.end()) continue;
      std::uint32_t dest = emb.ghost_owner[it->second];
      if (dest == last_sent[i]) continue;  // consecutive-dup filter
      by_dest[dest].push_back({emb.owned[i], side[i]});
      last_sent[i] = dest;
    }
  }
  std::vector<std::pair<std::uint32_t, std::vector<SideMsg>>> out;
  for (std::uint32_t dest = 0; dest < comm.nranks(); ++dest) {
    if (dest == comm.rank() || by_dest[dest].empty()) continue;
    auto& list = by_dest[dest];
    std::sort(list.begin(), list.end(),
              [](const SideMsg& a, const SideMsg& b) { return a.id < b.id; });
    list.erase(std::unique(list.begin(), list.end(),
                           [](const SideMsg& a, const SideMsg& b) {
                             return a.id == b.id;
                           }),
               list.end());
    out.emplace_back(dest, std::move(list));
  }
  auto in = comm.exchange_typed(out);
  std::vector<std::uint8_t> ghost_side(emb.ghost_ids.size(), 0);
  std::vector<bool> ghost_known(emb.ghost_ids.size(), false);
  for (const auto& [src, payload] : in) {
    (void)src;
    for (const SideMsg& msg : payload) {
      auto it = ghost_of.find(msg.id);
      if (it != ghost_of.end()) {
        ghost_side[it->second] = static_cast<std::uint8_t>(msg.side);
        ghost_known[it->second] = true;
      }
    }
  }

  double cut2 = 0.0;
  double work = 0.0;
  for (std::uint32_t i = 0; i < emb.owned.size(); ++i) {
    VertexId v = emb.owned[i];
    auto nbrs = g.neighbors(v);
    auto ws = g.edge_weights_of(v);
    work += static_cast<double>(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      VertexId u = nbrs[k];
      std::uint8_t su;
      auto it_local = local_of.find(u);
      if (it_local != local_of.end()) {
        su = side[it_local->second];
      } else {
        std::uint32_t gi = ghost_of.at(u);
        SP_ASSERT_MSG(ghost_known[gi], "ghost side missing in halo exchange");
        su = ghost_side[gi];
      }
      if (su != side[i]) cut2 += static_cast<double>(ws[k]);
    }
  }
  comm.add_compute(work);
  double total = comm.allreduce(cut2, comm::ReduceOp::kSum);
  return static_cast<Weight>(std::llround(total / 2.0));
}

}  // namespace sp::partition
