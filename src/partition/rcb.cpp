#include "partition/rcb.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace sp::partition {

using geom::Vec2;
using graph::Bipartition;
using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

namespace {

/// Splits `idx` (indices into coords/weights) at the weighted median along
/// `axis`; lower half stays in idx[0..split), upper in idx[split..).
/// Returns split position. Ties on coordinate are broken by index hash so
/// regular grids still split evenly.
std::size_t weighted_median_split(std::vector<std::uint32_t>& idx,
                                  std::span<const Vec2> coords,
                                  std::span<const Weight> weights,
                                  std::size_t axis, double target_fraction) {
  auto key = [&](std::uint32_t i) {
    return std::make_pair(coords[i][axis], hash64(i));
  };
  std::sort(idx.begin(), idx.end(),
            [&](std::uint32_t a, std::uint32_t b) { return key(a) < key(b); });
  Weight total = 0;
  for (std::uint32_t i : idx) total += weights.empty() ? 1 : weights[i];
  const double target = target_fraction * static_cast<double>(total);
  Weight acc = 0;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    acc += weights.empty() ? 1 : weights[idx[k]];
    if (static_cast<double>(acc) >= target) return k + 1;
  }
  return idx.size();
}

std::size_t wider_axis(std::span<const Vec2> coords,
                       std::span<const std::uint32_t> idx) {
  double lo[2] = {1e300, 1e300}, hi[2] = {-1e300, -1e300};
  for (std::uint32_t i : idx) {
    for (std::size_t a = 0; a < 2; ++a) {
      lo[a] = std::min(lo[a], coords[i][a]);
      hi[a] = std::max(hi[a], coords[i][a]);
    }
  }
  return (hi[0] - lo[0] >= hi[1] - lo[1]) ? 0 : 1;
}

void rcb_recurse(std::vector<std::uint32_t> idx, std::span<const Vec2> coords,
                 std::span<const Weight> weights, std::uint32_t parts,
                 std::uint32_t first_part, std::vector<std::uint32_t>* out) {
  if (parts == 1 || idx.size() <= 1) {
    for (std::uint32_t i : idx) (*out)[i] = first_part;
    return;
  }
  std::uint32_t left_parts = parts / 2;
  double frac = static_cast<double>(left_parts) / static_cast<double>(parts);
  std::size_t split = weighted_median_split(idx, coords, weights,
                                            wider_axis(coords, idx), frac);
  std::vector<std::uint32_t> right(idx.begin() + static_cast<std::ptrdiff_t>(split),
                                   idx.end());
  idx.resize(split);
  rcb_recurse(std::move(idx), coords, weights, left_parts, first_part, out);
  rcb_recurse(std::move(right), coords, weights, parts - left_parts,
              first_part + left_parts, out);
}

}  // namespace

Bipartition rcb_bisect(std::span<const Vec2> coords,
                       std::span<const Weight> weights) {
  const auto n = static_cast<VertexId>(coords.size());
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::size_t split =
      weighted_median_split(idx, coords, weights, wider_axis(coords, idx), 0.5);
  Bipartition part(n);
  for (std::size_t k = split; k < idx.size(); ++k) part[idx[k]] = 1;
  return part;
}

PartitionResult rcb_partition(const CsrGraph& g,
                              std::span<const Vec2> coords) {
  SP_ASSERT(coords.size() == g.num_vertices());
  WallTimer timer;
  PartitionResult result;
  result.part = rcb_bisect(coords, g.vertex_weights());
  result.report = evaluate(g, result.part);
  result.seconds = timer.seconds();
  result.method = "RCB";
  return result;
}

std::vector<std::uint32_t> rcb_assign(std::span<const Vec2> coords,
                                      std::span<const Weight> weights,
                                      std::uint32_t parts) {
  SP_ASSERT(parts >= 1);
  std::vector<std::uint32_t> idx(coords.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::vector<std::uint32_t> out(coords.size(), 0);
  rcb_recurse(std::move(idx), coords, weights, parts, 0, &out);
  return out;
}

}  // namespace sp::partition
