#include "partition/geometric_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "geometry/sphere.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace sp::partition {

using geom::Vec2;
using geom::Vec3;
using graph::Bipartition;
using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

namespace {

/// Weighted quantile threshold of scalar values s: the t such that
/// vertices with s <= t carry ~fraction of the total weight (0.5 = the
/// median/bisection). Ties are pre-broken by a tiny deterministic
/// per-vertex perturbation applied by the caller.
double weighted_quantile(std::span<const double> s, std::span<const Weight> w,
                         double fraction) {
  std::vector<std::uint32_t> idx(s.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::sort(idx.begin(), idx.end(),
            [&](std::uint32_t a, std::uint32_t b) { return s[a] < s[b]; });
  Weight total = 0;
  for (std::uint32_t i : idx) total += w.empty() ? 1 : w[i];
  double target = fraction * static_cast<double>(total);
  double acc = 0;
  for (std::uint32_t i : idx) {
    acc += static_cast<double>(w.empty() ? 1 : w[i]);
    if (acc >= target) return s[i];
  }
  return s.empty() ? 0.0 : s[idx.back()];
}

/// Cut size of the partition induced by sign(s - threshold).
Weight cut_of_split(const CsrGraph& g, std::span<const double> s,
                    double threshold) {
  Weight cut2 = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    bool side_u = s[u] > threshold;
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (side_u != (s[nbrs[k]] > threshold)) cut2 += ws[k];
    }
  }
  return cut2 / 2;
}

/// Deterministic tiny tie-breaking noise (grids put many vertices on the
/// same line; without this the median split can be wildly unbalanced).
double jitter(VertexId v) {
  return (static_cast<double>(hash64(v) >> 11) * 0x1.0p-53 - 0.5) * 1e-9;
}

}  // namespace

GeometricMeshResult geometric_mesh_partition(const CsrGraph& g,
                                             std::span<const Vec2> coords,
                                             const GeometricMeshOptions& opt) {
  const VertexId n = g.num_vertices();
  SP_ASSERT(coords.size() == n);
  GeometricMeshResult best;
  best.cut = std::numeric_limits<Weight>::max();
  if (n == 0) {
    best.cut = 0;
    return best;
  }

  Rng rng(opt.seed);

  // Normalize: centre at the centroid and scale to unit RMS radius so the
  // stereographic lift spreads points over the sphere instead of crowding
  // one pole.
  Vec2 centroid{};
  for (const Vec2& p : coords) centroid += p;
  centroid /= static_cast<double>(n);
  double rms = 0.0;
  for (const Vec2& p : coords) rms += geom::distance2(p, centroid);
  rms = std::sqrt(rms / static_cast<double>(n));
  double inv_scale = rms > 1e-300 ? 1.0 / rms : 1.0;

  std::vector<Vec3> lifted(n);
  for (VertexId v = 0; v < n; ++v) {
    lifted[v] = geom::stereo_up((coords[v] - centroid) * inv_scale);
  }

  auto weights = std::span<const Weight>(g.vertex_weights());
  std::vector<double> s(n);

  auto consider = [&](std::span<const double> values, bool is_line) {
    double threshold = weighted_quantile(values, weights, opt.split_fraction);
    Weight cut = cut_of_split(g, values, threshold);
    ++best.tries;
    if (cut < best.cut) {
      best.cut = cut;
      best.winner_is_line = is_line;
      best.part = Bipartition(n);
      best.separator_distance.assign(n, 0.0);
      for (VertexId v = 0; v < n; ++v) {
        best.part[v] = values[v] > threshold ? 1 : 0;
        best.separator_distance[v] = values[v] - threshold;
      }
    }
  };

  // Great-circle separators, opt.num_centerpoints independent conformal
  // centrings.
  for (std::uint32_t c = 0; c < opt.num_centerpoints; ++c) {
    Vec3 cp = geom::approximate_centerpoint(lifted, rng, opt.centerpoint_sample);
    // Guard: the iterated-Radon approximation can land outside the ball on
    // adversarial inputs; pull it inside.
    if (cp.norm() >= 0.999) cp = cp * (0.999 / cp.norm());
    geom::ConformalMap map(cp);
    std::vector<Vec3> mapped(n);
    for (VertexId v = 0; v < n; ++v) mapped[v] = map.apply(lifted[v]);

    for (std::uint32_t t = 0; t < opt.circles_per_centerpoint; ++t) {
      Vec3 u = geom::random_unit_vector(rng);
      for (VertexId v = 0; v < n; ++v) s[v] = u.dot(mapped[v]) + jitter(v);
      consider(s, /*is_line=*/false);
    }
  }

  // Line separators: random directions in the plane, median split.
  for (std::uint32_t t = 0; t < opt.num_lines; ++t) {
    double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    Vec2 dir = geom::vec2(std::cos(angle), std::sin(angle));
    for (VertexId v = 0; v < n; ++v) s[v] = dir.dot(coords[v]) + jitter(v);
    consider(s, /*is_line=*/true);
  }

  // Optional axis-aligned median cut (cheap extra candidate in G30).
  if (opt.axis_cut) {
    for (VertexId v = 0; v < n; ++v) s[v] = coords[v][0] + jitter(v);
    consider(s, /*is_line=*/true);
  }

  return best;
}

PartitionResult gmt_partition(const CsrGraph& g, std::span<const Vec2> coords,
                              const GeometricMeshOptions& opt,
                              const std::string& method_name) {
  WallTimer timer;
  GeometricMeshResult r = geometric_mesh_partition(g, coords, opt);
  PartitionResult result;
  result.part = std::move(r.part);
  result.report = evaluate(g, result.part);
  result.seconds = timer.seconds();
  result.method = method_name;
  return result;
}

}  // namespace sp::partition
