#include "partition/multilevel_kl.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "refine/fm.hpp"
#include "refine/greedy.hpp"
#include "refine/strip.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace sp::partition {

using graph::Bipartition;
using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

Bipartition greedy_graph_growing(const CsrGraph& g, VertexId seed_vertex) {
  const VertexId n = g.num_vertices();
  SP_ASSERT(seed_vertex < n);
  Bipartition part(n);
  for (VertexId v = 0; v < n; ++v) part[v] = 1;  // grow side 0 from the seed

  const Weight half = g.total_vertex_weight() / 2;
  Weight grown = 0;

  // Priority: vertices with the largest (internal - external) connectivity
  // to the grown region first — the classic GGGP gain function.
  std::priority_queue<std::pair<Weight, VertexId>> frontier;
  std::vector<bool> in_queue(n, false);
  std::vector<Weight> gain(n, 0);

  auto absorb = [&](VertexId v) {
    part[v] = 0;
    grown += g.vertex_weight(v);
    auto nbrs = g.neighbors(v);
    auto ws = g.edge_weights_of(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      VertexId u = nbrs[k];
      if (part[u] == 0) continue;
      gain[u] += 2 * ws[k];
      frontier.emplace(gain[u], u);  // lazy update; stale entries skipped
      in_queue[u] = true;
    }
  };

  absorb(seed_vertex);
  while (grown < half && !frontier.empty()) {
    auto [priority, v] = frontier.top();
    frontier.pop();
    if (part[v] == 0 || priority != gain[v]) continue;  // stale
    absorb(v);
  }
  // Disconnected graphs: frontier may dry up early; absorb arbitrary
  // remaining vertices to reach balance.
  for (VertexId v = 0; grown < half && v < n; ++v) {
    if (part[v] == 1) absorb(v);
  }
  return part;
}

Bipartition initial_bisection(const CsrGraph& g, std::uint32_t tries,
                              double epsilon, std::uint64_t seed) {
  SP_ASSERT(g.num_vertices() >= 2);
  Rng rng(seed);
  Bipartition best;
  Weight best_cut = std::numeric_limits<Weight>::max();
  refine::FmOptions fm_opt;
  fm_opt.epsilon = epsilon;
  fm_opt.max_passes = 10;
  for (std::uint32_t t = 0; t < std::max(1u, tries); ++t) {
    auto seed_vertex = static_cast<VertexId>(rng.below(g.num_vertices()));
    Bipartition part = greedy_graph_growing(g, seed_vertex);
    refine::fm_refine(g, part, fm_opt);
    Weight cut = cut_size(g, part);
    if (cut < best_cut) {
      best_cut = cut;
      best = part;
    }
  }
  return best;
}

PartitionResult multilevel_partition(const CsrGraph& g,
                                     const MultilevelKLOptions& opt) {
  WallTimer timer;
  PartitionResult result;
  result.method =
      opt.preset == MlPreset::kParMetisLike ? "ParMetis-like" : "Pt-Scotch-like";

  coarsen::HierarchyOptions hopt;
  hopt.coarsest_size = opt.coarsest_size;
  hopt.rounds_per_level = 1;  // classic halving for the baselines
  hopt.seed = opt.seed;
  coarsen::Hierarchy hierarchy = coarsen::Hierarchy::build(g, hopt);

  Bipartition part = initial_bisection(hierarchy.coarsest(), opt.initial_tries,
                                       opt.epsilon, opt.seed ^ 0xC0A53ull);

  // Uncoarsen level by level with preset-specific refinement.
  for (std::size_t level = hierarchy.num_levels() - 1; level > 0; --level) {
    part = hierarchy.project(part, level, level - 1);
    const CsrGraph& fine = hierarchy.graph_at(level - 1);
    if (opt.preset == MlPreset::kParMetisLike) {
      refine::greedy_refine(fine, part, opt.epsilon, opt.greedy_sweeps);
    } else {
      auto band = refine::hop_band(fine, part, opt.band_hops);
      refine::FmOptions fm_opt;
      fm_opt.epsilon = opt.epsilon;
      fm_opt.max_passes = opt.fm_passes;
      refine::fm_refine(fine, part, fm_opt, band);
    }
  }
  // Single-level hierarchies (tiny graphs) still deserve refinement.
  if (hierarchy.num_levels() == 1) {
    refine::FmOptions fm_opt;
    fm_opt.epsilon = opt.epsilon;
    refine::fm_refine(g, part, fm_opt);
  }

  result.part = std::move(part);
  result.report = evaluate(g, result.part);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace sp::partition
