// Multilevel graph bisection: the from-scratch stand-in for the ParMetis
// and Pt-Scotch baselines the paper compares against.
//
// Pipeline (Karypis-Kumar style): heavy-edge-matching coarsening to a few
// hundred vertices, greedy graph-growing initial bisection (best of k
// seeds, polished with FM), then uncoarsening with per-level refinement.
// Two presets encode the baselines' characteristic trade-offs:
//  - ParMetisLike: halving coarsening, cheap boundary-greedy refinement
//    (1-2 sweeps). Fast; cuts ~10-20% worse — matching the paper's
//    observation that ParMetis trades quality for speed.
//  - PtScotchLike: halving coarsening, band-restricted FM per level with
//    several passes (Pt-Scotch's band-graph refinement). Slower; best cuts.
#pragma once

#include <cstdint>

#include "coarsen/hierarchy.hpp"
#include "graph/csr_graph.hpp"
#include "partition/partitioner.hpp"

namespace sp::partition {

enum class MlPreset { kParMetisLike, kPtScotchLike };

struct MultilevelKLOptions {
  MlPreset preset = MlPreset::kPtScotchLike;
  double epsilon = 0.05;
  graph::VertexId coarsest_size = 160;
  std::uint32_t initial_tries = 4;
  std::uint64_t seed = 1;
  /// Band width (hops) for PtScotchLike refinement.
  std::uint32_t band_hops = 3;
  /// FM passes per level for PtScotchLike.
  std::uint32_t fm_passes = 6;
  /// Greedy sweeps per level for ParMetisLike.
  std::uint32_t greedy_sweeps = 2;
};

/// Greedy graph growing bisection: BFS-grow a region from `seed_vertex`
/// preferring boundary vertices with high internal connectivity until it
/// holds half the vertex weight. Exposed for tests and for the parallel
/// coarse-graph bisection.
graph::Bipartition greedy_graph_growing(const graph::CsrGraph& g,
                                        graph::VertexId seed_vertex);

/// Best-of-k initial bisection of a (coarsest) graph, FM-polished.
graph::Bipartition initial_bisection(const graph::CsrGraph& g,
                                     std::uint32_t tries, double epsilon,
                                     std::uint64_t seed);

PartitionResult multilevel_partition(const graph::CsrGraph& g,
                                     const MultilevelKLOptions& opt);

}  // namespace sp::partition
