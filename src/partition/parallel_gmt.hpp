// Parallel geometric mesh partitioning — SP-PG7-NL (paper Sec. 3).
//
// Runs on the distributed embedding produced by lattice_embed. Faithful to
// the paper's parallel formulation:
//  - the centerpoint is computed from a small sample gathered across all
//    ranks (one allgather), then every rank derives the same centerpoint
//    and conformal map redundantly;
//  - all candidate great circles are evaluated redundantly on each rank:
//    one allgather of threshold samples, then a single reduction combining
//    every candidate's (cut, side-weight) contributions selects the best —
//    "3 reductions with short messages" as the paper's analysis states;
//  - line separators are omitted (the -NL variant) because they would need
//    an eigenvector-style computation that does not parallelize;
//  - Fiduccia-Mattheyses refinement is applied to a geometric *strip*
//    around the winning circle: strip-local data is gathered to rank 0
//    (the strip holds a small multiple of |separator| vertices, so this
//    costs O(|S|), not O(N)), refined, and the flipped vertices broadcast.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/engine.hpp"
#include "embed/lattice_parallel.hpp"
#include "graph/csr_graph.hpp"
#include "partition/geometric_mesh.hpp"

namespace sp::partition {

struct ParallelGmtOptions {
  GeometricMeshOptions gmt = GeometricMeshOptions::g7nl();
  /// Total sample size for the centerpoint computation (split over ranks).
  std::size_t centerpoint_sample = 512;
  /// Total sample size for each circle's median threshold.
  std::size_t median_sample = 2048;
  bool strip_refine = true;
  double strip_factor = 6.0;
  /// Collar multiplier: vertices within collar_factor * strip width are
  /// shipped along so the strip's FM gains see their neighbours' sides.
  double collar_factor = 3.0;
  double epsilon = 0.05;
  std::uint64_t seed = 99;
};

struct ParallelGmtResult {
  /// Side per owned vertex (aligned with RankEmbedding::owned).
  std::vector<std::uint8_t> side;
  graph::Weight cut = 0;
  graph::Weight cut_before_refine = 0;
  /// Strip size actually refined (0 when refinement is off), rank-0 value.
  std::size_t strip_size = 0;
};

/// SPMD: all ranks of `comm` call with their embedding slice. `g` is the
/// (shared, read-only) finest graph.
ParallelGmtResult parallel_gmt(comm::Comm& comm, const graph::CsrGraph& g,
                               const embed::RankEmbedding& emb,
                               const ParallelGmtOptions& opt);

/// Exact distributed cut of a side assignment: one halo exchange of owned
/// sides plus one reduction. SPMD over the same layout as parallel_gmt.
graph::Weight distributed_cut(comm::Comm& comm, const graph::CsrGraph& g,
                              const embed::RankEmbedding& emb,
                              std::span<const std::uint8_t> side);

}  // namespace sp::partition
