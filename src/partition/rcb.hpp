// Recursive coordinate bisection (Berger-Bokhari; the scheme Zoltan ships).
//
// Splits the point set at the weighted median along the longest axis of
// its bounding box, recursively. Fast and trivially parallel, but the cuts
// ignore the edge structure entirely — the quality gap to the geometric
// mesh partitioner in Table 2 comes from exactly that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "partition/partitioner.hpp"

namespace sp::partition {

/// Single bisection: weighted median split along the wider bounding-box
/// axis. Deterministic.
graph::Bipartition rcb_bisect(std::span<const geom::Vec2> coords,
                              std::span<const graph::Weight> weights);

/// Full RCB partitioner for a graph with coordinates (computes the cut).
PartitionResult rcb_partition(const graph::CsrGraph& g,
                              std::span<const geom::Vec2> coords);

/// Recursive k-way assignment of points to `parts` parts (parts need not be
/// a power of two; weights balanced proportionally). Used to map the
/// coarsest embedded graph onto the processor grid, as the paper does with
/// Zoltan's RCB.
std::vector<std::uint32_t> rcb_assign(std::span<const geom::Vec2> coords,
                                      std::span<const graph::Weight> weights,
                                      std::uint32_t parts);

}  // namespace sp::partition
