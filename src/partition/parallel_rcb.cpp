#include "partition/parallel_rcb.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::partition {

using geom::Vec2;
using graph::LocalView;
using graph::VertexId;
using graph::Weight;

namespace {

struct PointMsg {
  VertexId id;
  double x, y;
};

/// One bisection phase of the group `cur`: bounding-box reduction, exact
/// iterative median along the wider axis (Zoltan-style bisection search,
/// one counting reduction per round), returns the threshold and axis.
std::pair<double, std::size_t> median_phase(comm::Comm& cur,
                                            const std::vector<PointMsg>& pts,
                                            std::uint32_t rounds) {
  double mins[2] = {1e300, 1e300}, maxs[2] = {-1e300, -1e300};
  for (const PointMsg& p : pts) {
    mins[0] = std::min(mins[0], p.x);
    mins[1] = std::min(mins[1], p.y);
    maxs[0] = std::max(maxs[0], p.x);
    maxs[1] = std::max(maxs[1], p.y);
  }
  auto lo = cur.allreduce_vec(std::span<const double>(mins, 2),
                              comm::ReduceOp::kMin);
  auto hi = cur.allreduce_vec(std::span<const double>(maxs, 2),
                              comm::ReduceOp::kMax);
  std::size_t axis = (hi[0] - lo[0] >= hi[1] - lo[1]) ? 0 : 1;
  cur.add_compute(static_cast<double>(pts.size()) * 2.0);

  double range_lo = lo[axis] - 1e-6, range_hi = hi[axis] + 1e-6;
  double total = cur.allreduce(static_cast<double>(pts.size()),
                               comm::ReduceOp::kSum);
  for (std::uint32_t round = 0; round < rounds; ++round) {
    double probe = 0.5 * (range_lo + range_hi);
    double below = 0;
    for (const PointMsg& p : pts) {
      below += (axis == 0 ? p.x : p.y) <= probe ? 1.0 : 0.0;
    }
    cur.add_compute(static_cast<double>(pts.size()));
    double below_total = cur.allreduce(below, comm::ReduceOp::kSum);
    if (below_total >= total / 2.0) {
      range_hi = probe;
    } else {
      range_lo = probe;
    }
  }
  return {0.5 * (range_lo + range_hi), axis};
}

}  // namespace

ParallelRcbResult parallel_rcb(comm::Comm& comm, const LocalView& view,
                               std::span<const Vec2> coords,
                               const ParallelRcbOptions& opt) {
  const VertexId n_local = view.num_local();
  const VertexId n = view.global_graph().num_vertices();
  ParallelRcbResult result;
  result.side.assign(n_local, 0);

  // Working point set (id, jittered coordinates); Zoltan decomposes into P
  // parts through log2(P) recursive bisection phases with point migration
  // between them — we reproduce the whole recursion because that is what
  // the paper timed, while the reported cut comes from the first (2-way)
  // bisection.
  auto jitter = [](VertexId global) {
    return (static_cast<double>(hash64(global) >> 11) * 0x1.0p-53 - 0.5) *
           1e-9;
  };
  std::vector<PointMsg> points;
  points.reserve(n_local);
  for (VertexId i = 0; i < n_local; ++i) {
    VertexId global = view.to_global(i);
    points.push_back({global, coords[global][0] + jitter(global),
                      coords[global][1] + jitter(global)});
  }

  // ---- Phase 0: the bisection whose cut the paper reports. ----
  auto [threshold, axis] = median_phase(comm, points, opt.median_rounds);
  auto side_of = [&, threshold = threshold, axis = axis](VertexId global) {
    double v = coords[global][axis] + jitter(global);
    return static_cast<std::uint8_t>(v > threshold ? 1 : 0);
  };
  for (VertexId i = 0; i < n_local; ++i) {
    result.side[i] = side_of(view.to_global(i));
  }

  // Cut evaluation: ghost sides through one halo exchange (sides of ghost
  // endpoints are not known locally in a real run).
  {
    struct SideMsg {
      VertexId id;
      std::uint32_t side;
    };
    const auto& nbr_ranks = view.neighbor_ranks();
    std::vector<std::pair<std::uint32_t, std::vector<SideMsg>>> out;
    for (std::uint32_t r : nbr_ranks) {
      std::vector<SideMsg> payload;
      for (VertexId local : view.boundary_locals()) {
        VertexId global = view.to_global(local);
        bool adjacent = false;
        for (VertexId u : view.neighbors(local)) {
          if (!view.owns(u) && graph::block_owner(u, n, view.nranks()) == r) {
            adjacent = true;
            break;
          }
        }
        if (adjacent) payload.push_back({global, result.side[local]});
      }
      if (!payload.empty()) out.emplace_back(r, std::move(payload));
    }
    auto in = comm.exchange_typed(out);
    std::unordered_map<VertexId, std::uint8_t> ghost_side;
    for (const auto& [src, payload] : in) {
      (void)src;
      for (const SideMsg& msg : payload) {
        ghost_side[msg.id] = static_cast<std::uint8_t>(msg.side);
      }
    }
    double cut2 = 0.0;
    double work = 0.0;
    for (VertexId i = 0; i < n_local; ++i) {
      auto nbrs = view.neighbors(i);
      auto ws = view.edge_weights_of(i);
      work += static_cast<double>(nbrs.size());
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        VertexId u = nbrs[k];
        std::uint8_t su =
            view.owns(u) ? result.side[view.to_local(u)] : ghost_side.at(u);
        if (su != result.side[i]) cut2 += static_cast<double>(ws[k]);
      }
    }
    comm.add_compute(work);
    result.cut = static_cast<Weight>(
        std::llround(comm.allreduce(cut2, comm::ReduceOp::kSum) / 2.0));
  }

  // ---- Phases 1..log2(P)-1: complete the P-way decomposition. ----
  // Migrate: lower-half ranks of the group take side-0 points, upper-half
  // side-1; each rank ships each half to one partner (the real data
  // movement Zoltan performs between levels).
  std::uint8_t migrate_side_axis = static_cast<std::uint8_t>(axis);
  double migrate_threshold = threshold;
  comm::Comm cur = comm.split(0, comm.rank());  // private communicator
  while (cur.nranks() > 1) {
    const std::uint32_t s = cur.nranks();
    const std::uint32_t half = s / 2;
    std::vector<PointMsg> side0, side1;
    for (const PointMsg& p : points) {
      double v = migrate_side_axis == 0 ? p.x : p.y;
      (v > migrate_threshold ? side1 : side0).push_back(p);
    }
    std::vector<std::pair<std::uint32_t, std::vector<PointMsg>>> out;
    std::uint32_t dest0 = cur.rank() / 2;
    std::uint32_t dest1 = half + cur.rank() / 2;
    if (!side0.empty()) out.emplace_back(std::min(dest0, s - 1), std::move(side0));
    if (!side1.empty()) out.emplace_back(std::min(dest1, s - 1), std::move(side1));
    auto in = cur.exchange_typed(out);
    points.clear();
    for (auto& [src, payload] : in) {
      (void)src;
      points.insert(points.end(), payload.begin(), payload.end());
    }
    bool lower = cur.rank() < half;
    comm::Comm next = cur.split(lower ? 0u : 1u, cur.rank());
    cur = std::move(next);
    if (cur.nranks() <= 1) break;
    auto [t2, a2] = median_phase(cur, points, opt.median_rounds);
    migrate_threshold = t2;
    migrate_side_axis = static_cast<std::uint8_t>(a2);
  }
  return result;
}

}  // namespace sp::partition
