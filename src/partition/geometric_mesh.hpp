// Gilbert-Miller-Teng geometric mesh partitioner ("geopart").
//
// Sequence per the paper [9,24]: stereographically lift the 2-D embedding
// to the unit sphere in R^3, compute an approximate centerpoint, apply a
// conformal map sending the centerpoint to the sphere centre, draw random
// great circles through the centre, and map each circle back to a
// circle-cut of the plane. The best of T tries wins. Balance is enforced
// by placing the separating plane at the weighted median of the
// great-circle coordinate (so the "great circle" may slide parallel to
// itself: the image in the plane is still a circle).
//
// Variants match the paper's notation:
//   G30  : 30 tries = 22 great circles over 2 centerpoints + 7 lines + 1
//          coordinate-axis median cut.
//   G7   : 7 tries = 5 great circles over 1 centerpoint + 2 lines.
//   G7-NL: G7 with no line separators (5 great circles, 1 centerpoint) —
//          the variant ScalaPart parallelizes (SP-PG7-NL), because line
//          separators need an eigenvector-style computation that does not
//          scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "partition/partitioner.hpp"

namespace sp::partition {

struct GeometricMeshOptions {
  std::uint32_t circles_per_centerpoint = 5;
  std::uint32_t num_centerpoints = 1;
  std::uint32_t num_lines = 2;
  bool axis_cut = false;  // one extra median cut along each best axis
  std::size_t centerpoint_sample = 800;
  std::uint64_t seed = 12345;
  /// Weight fraction placed on side 0 (0.5 = bisection). Recursive k-way
  /// partitioning with k not a power of two needs asymmetric splits.
  double split_fraction = 0.5;

  static GeometricMeshOptions g30() {
    GeometricMeshOptions opt;
    opt.circles_per_centerpoint = 11;
    opt.num_centerpoints = 2;
    opt.num_lines = 7;
    opt.axis_cut = true;
    return opt;
  }
  static GeometricMeshOptions g7() {
    GeometricMeshOptions opt;
    opt.circles_per_centerpoint = 5;
    opt.num_centerpoints = 1;
    opt.num_lines = 2;
    return opt;
  }
  static GeometricMeshOptions g7nl() {
    GeometricMeshOptions opt;
    opt.circles_per_centerpoint = 5;
    opt.num_centerpoints = 1;
    opt.num_lines = 0;
    return opt;
  }
};

struct GeometricMeshResult {
  graph::Bipartition part;
  graph::Weight cut = 0;
  /// Signed margin of each vertex from the winning separator (median-
  /// centred); feeds the strip extraction for FM refinement.
  std::vector<double> separator_distance;
  bool winner_is_line = false;
  std::uint32_t tries = 0;
};

GeometricMeshResult geometric_mesh_partition(const graph::CsrGraph& g,
                                             std::span<const geom::Vec2> coords,
                                             const GeometricMeshOptions& opt);

/// Convenience wrapper returning the common PartitionResult.
PartitionResult gmt_partition(const graph::CsrGraph& g,
                              std::span<const geom::Vec2> coords,
                              const GeometricMeshOptions& opt,
                              const std::string& method_name);

}  // namespace sp::partition
