#include "core/scalapart.hpp"
#include <unordered_map>

#include <algorithm>
#include <filesystem>

#include "analysis/pipeline_check.hpp"
#include "analysis/shared.hpp"
#include "coarsen/hierarchy.hpp"
#include "coarsen/parallel_matching.hpp"
#include "comm/engine.hpp"
#include "core/checkpoint.hpp"
#include "exec/executor.hpp"
#include "graph/distributed_graph.hpp"
#include "obs/flight.hpp"
#include "obs/span.hpp"
#include "support/assert.hpp"

namespace sp::core {

using graph::Bipartition;
using graph::CsrGraph;
using graph::VertexId;

namespace {

std::uint32_t p_at_level(std::uint32_t P, std::size_t level) {
  std::uint32_t shift = 2 * static_cast<std::uint32_t>(level);
  return shift >= 32 ? 1u : std::max(P >> shift, 1u);
}

StageBreakdown breakdown_from(const comm::RunStats& stats) {
  StageBreakdown b;
  auto coarsen = stats.stage_max(obs::stages::kCoarsen);
  auto embed = stats.stage_max(obs::stages::kEmbed);
  auto part = stats.stage_max(obs::stages::kPartition);
  b.coarsen_seconds = coarsen.total();
  b.embed_seconds = embed.total();
  b.partition_seconds = part.total();
  b.embed_comm_seconds = embed.comm_seconds;
  b.embed_compute_seconds = embed.compute_seconds;
  return b;
}

/// Block-distributes externally-supplied coordinates over the ranks of
/// `world` and fills in the halo (ghost coordinates are paid for with one
/// exchange, exactly as when the coordinates arrive with the graph). The
/// redistribution path of the coordinate entry point.
embed::RankEmbedding embedding_from_coords(comm::Comm& world,
                                           const CsrGraph& g,
                                           std::span<const geom::Vec2> coords) {
  const VertexId n = g.num_vertices();
  graph::LocalView view(g, world.rank(), world.nranks());
  embed::RankEmbedding emb;
  emb.owned.resize(view.num_local());
  emb.pos.resize(view.num_local());
  for (VertexId i = 0; i < view.num_local(); ++i) {
    emb.owned[i] = view.to_global(i);
    emb.pos[i] = coords[view.to_global(i)];
  }
  struct CoordMsg {
    VertexId id;
    double x, y;
  };
  // Send my boundary coords to each neighbouring rank that ghosts them.
  const auto& nbr_ranks = view.neighbor_ranks();
  std::vector<std::pair<std::uint32_t, std::vector<CoordMsg>>> out;
  for (std::uint32_t r : nbr_ranks) {
    std::vector<CoordMsg> payload;
    for (VertexId local : view.boundary_locals()) {
      VertexId global = view.to_global(local);
      bool adj = false;
      for (VertexId u : view.neighbors(local)) {
        if (!view.owns(u) &&
            graph::block_owner(u, n, world.nranks()) == r) {
          adj = true;
          break;
        }
      }
      if (adj) payload.push_back({global, coords[global][0], coords[global][1]});
    }
    if (!payload.empty()) out.emplace_back(r, std::move(payload));
  }
  auto in = world.exchange_typed(out);
  emb.ghost_ids = view.ghosts();
  emb.ghost_pos.assign(emb.ghost_ids.size(), geom::Vec2{});
  emb.ghost_owner.resize(emb.ghost_ids.size());
  for (std::size_t i = 0; i < emb.ghost_ids.size(); ++i) {
    emb.ghost_owner[i] = graph::block_owner(emb.ghost_ids[i], n,
                                            world.nranks());
  }
  std::unordered_map<VertexId, std::uint32_t> ghost_of;
  for (std::uint32_t i = 0; i < emb.ghost_ids.size(); ++i) {
    ghost_of[emb.ghost_ids[i]] = i;
  }
  for (const auto& [src, payload] : in) {
    (void)src;
    for (const CoordMsg& msg : payload) {
      auto it = ghost_of.find(msg.id);
      if (it != ghost_of.end()) {
        emb.ghost_pos[it->second] = geom::vec2(msg.x, msg.y);
      }
    }
  }
  return emb;
}

/// Pipeline body shared by the fresh-start and cold-resume entry points.
/// `preloaded`, when non-null, seeds the embed checkpoint from a durable
/// file so the embedding resumes at the saved level.
ScalaPartResult scalapart_run(const CsrGraph& g, const ScalaPartOptions& opt,
                              const PipelineCheckpoint* preloaded) {
  SP_ASSERT_MSG((opt.nranks & (opt.nranks - 1)) == 0,
                "nranks must be a power of two");
  const VertexId n = g.num_vertices();
  ScalaPartResult result;
  result.part = Bipartition(n);
  if (n <= 2) {
    // n == 2: the only balanced bipartition (also the optimal one); the
    // full pipeline would collapse both vertices onto one embedding point
    // and trip the balance invariant.
    if (n == 2) result.part.side[1] = 1;
    result.report = evaluate(g, result.part);
    return result;
  }

  // Reference hierarchy: the same heavy-edge-matching coarsening the BSP
  // ranks execute, built once and shared read-only (see DESIGN.md on the
  // shared-structure convention).
  coarsen::HierarchyOptions hopt;
  hopt.coarsest_size =
      opt.coarsest_size != 0
          ? opt.coarsest_size
          : std::clamp<graph::VertexId>(n / 256, 64, 4096);
  hopt.rounds_per_level = opt.hierarchy_rounds;
  hopt.seed = opt.seed;
  coarsen::Hierarchy hierarchy = coarsen::Hierarchy::build(g, hopt);
  // Checkpoint: the coarsening hierarchy (every level's CSR, weight
  // conservation, exact cross-edge aggregation) and each level's halo
  // structure under the rank count that will process it. Validated once
  // here, not per rank inside the SPMD program.
  SP_ANALYSIS_CHECK("coarsen/hierarchy", analysis::validate_hierarchy(hierarchy));
#ifdef SP_ANALYSIS
  for (std::size_t level = 0; level + 1 < hierarchy.num_levels(); ++level) {
    SP_ANALYSIS_CHECK("coarsen/distributed",
                      analysis::validate_distributed_graph(
                          hierarchy.graph_at(level),
                          p_at_level(opt.nranks, level)));
  }
#endif
  embed::EmbedWorkspace workspace(hierarchy);

  embed::LatticeEmbedOptions embed_opt = opt.embed;
  embed_opt.seed = opt.seed ^ 0xE3BEDull;
  partition::ParallelGmtOptions gmt_opt = opt.gmt;
  gmt_opt.seed = opt.seed ^ (0x6E0ull * (opt.nranks + 1));

  // Shared result slots (distinct-index writes + barrier discipline);
  // every in-run access goes through the race-audited annotations.
  std::vector<std::uint8_t> side(n, 0);
  analysis::SharedSpan<std::uint8_t> shared_side(side.data(), side.size(),
                                                "core/side");
  graph::Weight cut = 0;
  std::size_t strip_size = 0;
  std::vector<geom::Vec2> coords;
  bool completed = false;

  // Fault-tolerance shared state. Checkpointing is only worth paying for
  // when something can actually kill a rank (planned crash or an enabled
  // failure detector) — or when the caller asked for durable checkpoints.
  const bool may_kill =
      !opt.faults.crashes.empty() || opt.detector.enabled();
  const bool tolerate = opt.recover_on_failure && may_kill;
  const bool durable = !opt.checkpoint_dir.empty();
  std::size_t coarsen_ckpt = 0;  // levels below this index are done
  embed::EmbedCheckpoint embed_ckpt;
  std::uint32_t recoveries = 0;
  std::uint32_t final_active = opt.nranks;
  std::uint32_t persisted = 0;

  if (preloaded) embed_ckpt = preloaded->to_embed_checkpoint();
  if (durable) {
    std::filesystem::create_directories(opt.checkpoint_dir);
    const std::string path = checkpoint_path(opt.checkpoint_dir);
    // Called by rank 0 of the active sub-communicator after each
    // checkpoint gather. Writers are serialized: a new writer can only
    // take over via a shrink, which the previous writer either joins
    // (its earlier persist happened-before, by program order through the
    // engine lock) or died before reaching. Host-side I/O only — no
    // modeled time.
    embed_ckpt.persist = [&, path](const embed::EmbedCheckpoint& c) {
      PipelineCheckpoint pc;
      pc.num_vertices = n;
      pc.num_edges = g.num_edges();
      pc.seed = opt.seed;
      pc.nranks = opt.nranks;
      pc.level = c.level;
      pc.pl = c.pl;
      pc.box = c.box;
      pc.coords = c.coords;
      pc.owner = c.owner;
      save_checkpoint(path, pc);
      ++persisted;
    };
  }

  comm::BspEngine::Options eng_opt;
  eng_opt.nranks = opt.nranks;
  eng_opt.model = opt.cost_model;
  eng_opt.faults = opt.faults;
  eng_opt.detector = opt.detector;
  eng_opt.schedule = opt.schedule;
  eng_opt.schedule_seed = opt.schedule_seed;
  eng_opt.backend = opt.backend;
  eng_opt.threads = opt.threads;
  comm::BspEngine engine(eng_opt);

#ifdef SP_OBS
  // Flight recorder (DESIGN.md §9): reuse an enclosing recorder when one
  // is installed (the chaos harness does this to own the dump), otherwise
  // install our own for the duration of the run. Recording only *reads*
  // rank state — partitions, clocks, and fingerprints are bit-identical
  // with it on or off.
  std::optional<obs::flight::FlightRecorder> own_flight;
  std::optional<obs::flight::ScopedFlightRecording> flight_scope;
  obs::flight::FlightRecorder* flight = obs::flight::FlightRecorder::current();
  if (flight == nullptr && opt.flight_capacity != 0) {
    own_flight.emplace(opt.nranks, opt.flight_capacity);
    flight_scope.emplace(*own_flight);
    flight = &*own_flight;
  }
  if (flight != nullptr) {
    flight->set_meta("program", "scalapart");
    flight->set_meta("seed", std::to_string(opt.seed));
    flight->set_meta("nranks", std::to_string(opt.nranks));
    flight->set_meta("backend", exec::backend_name(opt.backend));
    flight->set_meta("threads", std::to_string(opt.threads));
    flight->set_meta("schedule_seed", std::to_string(opt.schedule_seed));
    flight->set_meta("fault_crashes", std::to_string(opt.faults.crashes.size()));
    flight->set_meta("fault_stragglers",
                     std::to_string(opt.faults.stragglers.size()));
    flight->set_meta("fault_messages",
                     std::to_string(opt.faults.message_faults.size()));
    flight->set_meta("fault_seed", std::to_string(opt.faults.seed));
    flight->set_meta("detector_deadline",
                     std::to_string(opt.detector.deadline_seconds));
    flight->set_meta("recover_on_failure",
                     opt.recover_on_failure ? "true" : "false");
    flight->set_meta("max_recoveries", std::to_string(opt.max_recoveries));
  }
  auto flight_dump = [&](const std::string& reason) {
    if (flight != nullptr) {
      obs::flight::dump_abnormal(*flight, opt.flight_dir, reason);
    }
  };
#else
  auto flight_dump = [](const std::string&) {};
#endif

  auto program = [&](comm::Comm& world0) {
    comm::Comm world = world0;
    // Root of the rank's span tree; spans reference the `world` variable
    // (not its current value), so they survive shrink/split reassignment
    // — world_rank and the clock source never change.
    obs::Span pipeline_span(world, "scalapart", "pipeline");
    bool need_recover = false;
    // Rank-local recovery count: a shared counter would race under the
    // threads backend (the budget check runs before the shrink that
    // would synchronize it). Every survivor participates in every
    // recovery round, so the local counts agree.
    std::uint32_t my_recoveries = 0;
    // Engine-wide failure list as of the last observed RankFailedError
    // (order of death); carried into RecoveryExhaustedError so callers
    // see who died even when the budget check aborts before the shrink.
    std::vector<std::uint32_t> my_failed;
    for (;;) {
      try {
        if (need_recover) {
          ++my_recoveries;
          if (opt.max_recoveries != 0 &&
              my_recoveries > opt.max_recoveries) {
            RecoveryStats rs;
            rs.failed_ranks = my_failed;
            rs.recoveries = my_recoveries - 1;
            throw RecoveryExhaustedError(
                "recovery budget (" + std::to_string(opt.max_recoveries) +
                    ") exceeded",
                rs);
          }
          // ---- Shrink-and-recover (traced under stage "recover"). ----
          world.set_stage(obs::stages::kRecover);
          obs::Span recover_span(world, obs::stages::kRecover, "stage");
          obs::mark(world, "shrink-and-recover", "fault");
          world = world.shrink();
          // lattice_embed needs a power-of-two rank count: the largest
          // power-of-two prefix of the survivors keeps computing; the
          // remainder retire as spares.
          std::uint32_t p2 = 1;
          while (p2 * 2 <= world.nranks()) p2 *= 2;
          const bool active = world.rank() < p2;
          if (world.rank() == 0) {
            // Successive writers (rank 0 of each shrunken world) are
            // ordered by the shrink every survivor just joined. The
            // increment reads through the seam too: after the original
            // rank 0 died, the new writer may be a process-backend child
            // whose own image of the counter is stale.
            analysis::shared_store(
                world, recoveries,
                analysis::shared_load(world, recoveries, "core/recoveries") +
                    1,
                "core/recoveries");
            analysis::shared_store(world, final_active, p2,
                                   "core/final_active");
            obs::count(world, "fault/recoveries");
            obs::gauge(world, "fault/active_ranks", p2);
          }
          comm::Comm active_comm =
              world.split(active ? 0u : 1u, world.rank());
          if (!active) return;  // spare: no further part in the pipeline
          world = active_comm;
          need_recover = false;
        }
        const std::uint32_t P = world.nranks();

        // ---- Coarsening: distributed heavy-edge matching per level. ----
        world.set_stage(obs::stages::kCoarsen);
        {
          obs::Span stage_span(world, obs::stages::kCoarsen, "stage");
          for (std::size_t level = analysis::shared_load(world, coarsen_ckpt,
                                                         "core/coarsen_ckpt");
               level + 1 < hierarchy.num_levels(); ++level) {
            obs::Span level_span(world, obs::stages::kCoarsen, "level",
                                 static_cast<std::int32_t>(level));
            const std::uint32_t pl = p_at_level(P, level);
            const bool active = world.rank() < pl;
            comm::Comm sub = world.split(active ? 0u : 1u, world.rank());
            // This split completing means every rank finished the previous
            // level; a retry never needs to re-run levels below here. (The
            // coarse hierarchy itself is shared read-only, so the coarsen
            // checkpoint is just this index.)
            if (world.rank() == 0) {
              analysis::shared_store(world, coarsen_ckpt, level,
                                     "core/coarsen_ckpt");
            }
            if (!active) continue;
            const CsrGraph& level_graph = hierarchy.graph_at(level);
            graph::LocalView view(level_graph, sub.rank(), pl);
            auto match = coarsen::distributed_matching(
                sub, view, opt.matching_rounds, opt.seed + level);
            if (obs::active()) {
              // Match rate per level: matched/vertex counters, ratio at
              // query time (keeps increments integral, hence sums exact).
              double matched = 0.0;
              for (VertexId v = 0; v < view.num_local(); ++v) {
                if (match.partner[v] != view.to_global(v)) matched += 1.0;
              }
              const std::string lvl = std::to_string(level);
              obs::count(sub, "coarsen/matched.L" + lvl, matched);
              obs::count(sub, "coarsen/vertices.L" + lvl,
                         static_cast<double>(view.num_local()));
              obs::count(sub, "coarsen/rounds.L" + lvl,
                         static_cast<double>(match.rounds_used));
            }
            // The retained-level step contracts twice (intermediate halved
            // graph plus its matching); charge the intermediate round's
            // compute, whose communication profile mirrors the first at
            // half the volume.
            double arcs_local = 0;
            for (VertexId v = 0; v < view.num_local(); ++v) {
              arcs_local += static_cast<double>(view.neighbors(v).size());
            }
            sub.add_compute(arcs_local * 4.0 /*contract*/ +
                            arcs_local * 1.5 /*intermediate matching+contract*/);
          }
        }

        // ---- Multilevel fixed-lattice embedding. ----
        world.set_stage(obs::stages::kEmbed);
        embed::RankEmbedding emb;
        {
          obs::Span stage_span(world, obs::stages::kEmbed, "stage");
          emb = embed::lattice_embed(
              world, workspace, embed_opt,
              (tolerate || durable || preloaded) ? &embed_ckpt : nullptr);
        }
        // Checkpoint: each rank's slice of the embedding (alignment,
        // finiteness, owned/ghost disjointness) before partitioning
        // consumes it.
        SP_ANALYSIS_CHECK("embed/rank_embedding",
                          analysis::validate_rank_embedding(emb));

        // ---- Parallel geometric partitioning + strip refinement. ----
        world.set_stage(obs::stages::kPartition);
        partition::ParallelGmtResult gmt;
        {
          obs::Span stage_span(world, obs::stages::kPartition, "stage");
          gmt = partition::parallel_gmt(world, g, emb, gmt_opt);
        }
        for (std::size_t i = 0; i < emb.owned.size(); ++i) {
          // Distinct indices: each vertex has exactly one owner.
          shared_side.write(world, emb.owned[i], gmt.side[i]);
        }

        // ---- Result collection (not part of the timed pipeline). ----
        world.set_stage(obs::stages::kOutput);
        {
          obs::Span stage_span(world, obs::stages::kOutput, "stage");
          auto gathered = embed::gather_embedding(world, emb, n);
          if (world.rank() == 0) {
            analysis::shared_assign_vec(world, coords, std::move(gathered),
                                        "core/coords");
            analysis::shared_store(world, cut, gmt.cut, "core/cut");
            analysis::shared_store(world, strip_size, gmt.strip_size,
                                   "core/strip_size");
            analysis::shared_store(world, completed, true, "core/completed");
          }
          world.barrier();
        }
        return;
      } catch (const comm::RankFailedError& e) {
        if (!opt.recover_on_failure) throw;
        my_failed = e.failed_ranks();
        need_recover = true;
      }
    }
  };

  comm::RunStats stats;
  try {
    stats = engine.run(program);
  } catch (RecoveryExhaustedError& e) {
    // Budget exceeded inside a rank body: fill in what the shared slots
    // know (the thrower could only see its own counters) and re-raise.
    e.stats.recoveries = std::max(e.stats.recoveries, recoveries);
    e.stats.final_active_ranks = final_active;
    e.stats.checkpoints_persisted = persisted;
    e.stats.resumed_from_disk = preloaded != nullptr;
    flight_dump("RecoveryExhaustedError: " + std::string(e.what()));
    throw;
  } catch (const comm::RankFailedError& e) {
    if (!opt.recover_on_failure) {
      flight_dump("RankFailedError: " + std::string(e.what()));
      throw;
    }
    // Recovery was on but the engine still surfaced a failure: every
    // rank died. Structured error, not an unhandled unwind.
    RecoveryStats rs;
    rs.failed_ranks = e.failed_ranks();
    rs.recoveries = recoveries;
    rs.final_active_ranks = 0;
    rs.checkpoints_persisted = persisted;
    rs.resumed_from_disk = preloaded != nullptr;
    flight_dump("RecoveryExhaustedError: all ranks failed");
    throw RecoveryExhaustedError("all ranks failed", rs);
  } catch (const std::exception& e) {
    // Deadlock diagnostics, SPMD divergence, assertion unwinds — every
    // abnormal exit leaves a black box behind.
    flight_dump(e.what());
    throw;
  } catch (...) {
    flight_dump("unknown error");
    throw;
  }

  if (!completed) {
    // Every rank that could have finished the pipeline was killed (the
    // actives all died while retired spares let the run end cleanly).
    if (!opt.recover_on_failure) {
      flight_dump("RankFailedError: no active rank completed the pipeline");
      throw comm::RankFailedError(stats.failed_ranks);
    }
    RecoveryStats rs;
    rs.failed_ranks = stats.failed_ranks;
    rs.recoveries = recoveries;
    rs.final_active_ranks = 0;
    rs.detector = stats.detector;
    rs.checkpoints_persisted = persisted;
    rs.resumed_from_disk = preloaded != nullptr;
    flight_dump("RecoveryExhaustedError: no active rank completed the pipeline");
    throw RecoveryExhaustedError("no active rank completed the pipeline",
                                 rs);
  }

  for (VertexId v = 0; v < n; ++v) result.part[v] = side[v];
  result.report = evaluate(g, result.part);
  SP_ASSERT_MSG(result.report.cut == cut,
                "distributed cut disagrees with sequential evaluation");
  // Checkpoints: the gathered embedding and the refined partition
  // (coverage, balance, boundary/cut accounting). The imbalance bound is
  // structural sanity, not the quality target: tiny coarse graphs may
  // legitimately sit far from the epsilon the refiner aims for.
  SP_ANALYSIS_CHECK("embed/final",
                    analysis::validate_embedding(
                        std::span<const geom::Vec2>(coords), n));
  SP_ANALYSIS_CHECK("partition/final",
                    analysis::validate_partition(g, result.part, 0.35));
  result.stages = breakdown_from(stats);
  result.modeled_seconds = result.stages.total();
  result.partition_only_seconds = result.stages.partition_seconds;
  result.recovery.failed_ranks = stats.failed_ranks;
  result.recovery.recoveries = recoveries;
  result.recovery.final_active_ranks = final_active;
  result.recovery.checkpoint_seconds =
      stats.stage_max(obs::stages::kCheckpoint).total();
  result.recovery.recover_seconds =
      stats.stage_max(obs::stages::kRecover).total();
  result.recovery.checkpoint_messages =
      stats.stage_sum(obs::stages::kCheckpoint).messages;
  result.recovery.recover_messages =
      stats.stage_sum(obs::stages::kRecover).messages;
  result.recovery.detector = stats.detector;
  result.recovery.checkpoints_persisted = persisted;
  result.recovery.resumed_from_disk = preloaded != nullptr;
  result.stats = std::move(stats);
  result.embedding = std::move(coords);
  result.strip_size = strip_size;
  return result;
}

}  // namespace

ScalaPartResult scalapart_partition(const CsrGraph& g,
                                    const ScalaPartOptions& opt) {
  return scalapart_run(g, opt, nullptr);
}

ScalaPartResult resume_from_checkpoint(const CsrGraph& g,
                                       const ScalaPartOptions& opt) {
  if (opt.checkpoint_dir.empty()) {
    throw CheckpointError("resume_from_checkpoint requires checkpoint_dir");
  }
  PipelineCheckpoint ckpt =
      load_checkpoint(checkpoint_path(opt.checkpoint_dir));
  if (ckpt.num_vertices != g.num_vertices() ||
      ckpt.num_edges != g.num_edges()) {
    throw CheckpointError(
        "checkpoint was written for a different graph (" +
        std::to_string(ckpt.num_vertices) + " vertices / " +
        std::to_string(ckpt.num_edges) + " edges; resuming with " +
        std::to_string(g.num_vertices()) + " / " +
        std::to_string(g.num_edges()) + ")");
  }
  if (ckpt.seed != opt.seed || ckpt.nranks != opt.nranks) {
    throw CheckpointError(
        "checkpoint was written under different options (seed " +
        std::to_string(ckpt.seed) + ", nranks " +
        std::to_string(ckpt.nranks) + "; resuming with seed " +
        std::to_string(opt.seed) + ", nranks " +
        std::to_string(opt.nranks) + ")");
  }
  return scalapart_run(g, opt, &ckpt);
}

ScalaPartResult sp_pg7nl_partition(const CsrGraph& g,
                                   std::span<const geom::Vec2> coords,
                                   const ScalaPartOptions& opt) {
  SP_ASSERT(coords.size() == g.num_vertices());
  SP_ASSERT_MSG((opt.nranks & (opt.nranks - 1)) == 0,
                "nranks must be a power of two");
  const VertexId n = g.num_vertices();
  ScalaPartResult result;
  result.part = Bipartition(n);
  if (n <= 2) {
    if (n == 2) result.part.side[1] = 1;  // the only balanced bipartition
    result.report = evaluate(g, result.part);
    return result;
  }

  partition::ParallelGmtOptions gmt_opt = opt.gmt;
  gmt_opt.seed = opt.seed ^ (0x6E0ull * (opt.nranks + 1));

  std::vector<std::uint8_t> side(n, 0);
  analysis::SharedSpan<std::uint8_t> shared_side(side.data(), side.size(),
                                                "core/side");
  graph::Weight cut = 0;

  comm::BspEngine::Options eng_opt;
  eng_opt.nranks = opt.nranks;
  eng_opt.model = opt.cost_model;
  eng_opt.faults = opt.faults;
  eng_opt.schedule = opt.schedule;
  eng_opt.schedule_seed = opt.schedule_seed;
  eng_opt.backend = opt.backend;
  eng_opt.threads = opt.threads;
  comm::BspEngine engine(eng_opt);

  auto stats = engine.run([&](comm::Comm& world) {
    obs::Span pipeline_span(world, "sp-pg7nl", "pipeline");
    world.set_stage(obs::stages::kPartition);
    obs::Span stage_span(world, obs::stages::kPartition, "stage");
    embed::RankEmbedding emb = embedding_from_coords(world, g, coords);
    auto gmt = partition::parallel_gmt(world, g, emb, gmt_opt);
    for (std::size_t i = 0; i < emb.owned.size(); ++i) {
      shared_side.write(world, emb.owned[i], gmt.side[i]);
    }
    if (world.rank() == 0) {
      analysis::shared_store(world, cut, gmt.cut, "core/cut");
    }
    world.barrier();
  });

  for (VertexId v = 0; v < n; ++v) result.part[v] = side[v];
  result.report = evaluate(g, result.part);
  SP_ASSERT(result.report.cut == cut);
  SP_ANALYSIS_CHECK("partition/final",
                    analysis::validate_partition(g, result.part, 0.35));
  result.stages = breakdown_from(stats);
  result.modeled_seconds = result.stages.partition_seconds;
  result.partition_only_seconds = result.stages.partition_seconds;
  result.stats = std::move(stats);
  return result;
}

}  // namespace sp::core
