#include "core/chaos_harness.hpp"

#include <exception>

#include "analysis/determinism.hpp"
#include "analysis/invariants.hpp"
#include "comm/chaos.hpp"
#include "obs/flight.hpp"
#include "obs/stage_names.hpp"
#include "support/random.hpp"

namespace sp::core {

ChaosCaseResult run_chaos_case(const graph::CsrGraph& g,
                               const ScalaPartOptions& base,
                               std::uint64_t case_seed) {
  ScalaPartOptions opt = base;

  // The fault plan itself: crashes (by event, virtual time, or pipeline
  // stage — including "recover"/"checkpoint", so cascading crashes during
  // recovery are in scope) plus stragglers. Horizons are sized for the
  // small fuzz graphs the sweep uses; later triggers simply never fire,
  // which is a legitimate (fault-free) case.
  comm::ChaosOptions chaos;
  chaos.max_crashes = 3;
  chaos.max_stragglers = 2;
  chaos.event_horizon = 300;
  chaos.time_horizon = 0.02;
  chaos.stages = {obs::stages::kCoarsen,   obs::stages::kEmbed,
                  obs::stages::kPartition, obs::stages::kOutput,
                  obs::stages::kRecover,   obs::stages::kCheckpoint};
  opt.faults = comm::random_fault_plan(case_seed, opt.nranks, chaos);

  // Randomize the recovery knobs too: a tight budget exercises the
  // RecoveryExhaustedError path, an enabled detector exercises
  // escalation kills on top of planned crashes.
  Rng knobs(hash64(case_seed ^ 0xB0D6E7ull));
  opt.max_recoveries = static_cast<std::uint32_t>(knobs.below(4));  // 0 = inf
  opt.recover_on_failure = true;
  if (knobs.chance(0.25)) {
    opt.detector.deadline_seconds = 1e-4 + knobs.uniform() * 2e-3;
    opt.detector.max_retries = static_cast<std::uint32_t>(knobs.below(3));
    opt.detector.backoff_seconds = knobs.uniform() * 1e-4;
  }

  ChaosCaseResult out;
  out.plan = comm::describe_fault_plan(opt.faults) + " | budget=" +
             (opt.max_recoveries == 0 ? std::string("inf")
                                      : std::to_string(opt.max_recoveries)) +
             (opt.detector.enabled()
                  ? " | detector deadline=" +
                        std::to_string(opt.detector.deadline_seconds) +
                        " retries=" + std::to_string(opt.detector.max_retries)
                  : "");
#ifdef SP_OBS
  // Own the flight recorder for the whole case: scalapart reuses the
  // installed recorder, dumps it on its own abnormal exits (budget
  // exhaustion, total failure), and this harness additionally dumps on
  // contract violations scalapart cannot see (validator failures,
  // unexpected exception types). The case seed rides in the metadata so
  // a dump alone suffices to replay the failure.
  obs::flight::FlightRecorder flight(opt.nranks);
  obs::flight::ScopedFlightRecording flight_scope(flight);
  flight.set_meta("chaos_case_seed", std::to_string(case_seed));
  flight.set_meta("chaos_plan", out.plan);
#endif
  try {
    const ScalaPartResult r = scalapart_partition(g, opt);
    out.completed = true;
    out.recoveries = r.recovery.recoveries;
    out.final_active = r.recovery.final_active_ranks;
    out.failed_ranks = r.recovery.failed_ranks.size();
    out.part_fp = analysis::fingerprint_bytes(r.part.side.data(),
                                              r.part.side.size());
    out.stats_fp = r.stats.fingerprint();
    const analysis::Violations v = analysis::validate_partition(g, r.part,
                                                                0.35);
    if (!v.empty()) {
      out.completed = false;
      out.error = "validator: " + v.front();
    }
  } catch (const RecoveryExhaustedError& e) {
    out.exhausted = true;
    out.recoveries = e.stats.recoveries;
    out.final_active = e.stats.final_active_ranks;
    out.failed_ranks = e.stats.failed_ranks.size();
  } catch (const std::exception& e) {
    out.error = std::string(e.what());
  } catch (...) {
    out.error = "non-standard exception escaped the pipeline";
  }
#ifdef SP_OBS
  if (!out.ok() && !flight.dumped()) {
    obs::flight::dump_abnormal(flight, opt.flight_dir,
                               "chaos contract violation: " + out.error);
  }
  out.dump_path = flight.dump_path();
#endif
  return out;
}

}  // namespace sp::core
