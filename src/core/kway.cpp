#include "core/kway.hpp"

#include <algorithm>

#include "core/scalapart.hpp"
#include "refine/fm.hpp"
#include "refine/strip.hpp"
#include "support/assert.hpp"

namespace sp::core {

using geom::Vec2;
using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

namespace {

/// Bisects the subgraph induced by `vertices` (global ids) at the given
/// weight fraction, geometrically, with optional strip-FM polish; assigns
/// `left_part`/`right_part` into `out`.
void bisect_region(const CsrGraph& g, std::span<const Vec2> coords,
                   std::vector<VertexId> vertices, std::uint32_t parts,
                   std::uint32_t first_part, const KwayOptions& opt,
                   std::uint64_t salt, std::vector<std::uint32_t>* out) {
  if (parts == 1 || vertices.size() <= 1) {
    for (VertexId v : vertices) (*out)[v] = first_part;
    return;
  }
  const std::uint32_t left_parts = parts / 2;
  const double fraction =
      static_cast<double>(left_parts) / static_cast<double>(parts);

  std::vector<VertexId> old_to_new;
  CsrGraph sub = graph::induced_subgraph(g, vertices, &old_to_new);
  std::vector<Vec2> sub_coords(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    sub_coords[i] = coords[vertices[i]];
  }

  partition::GeometricMeshOptions gmt = opt.gmt;
  gmt.split_fraction = fraction;
  gmt.seed = opt.seed ^ (salt * 0x9E3779B97F4A7C15ull);
  auto cut = partition::geometric_mesh_partition(sub, sub_coords, gmt);

  if (opt.strip_refine && sub.num_vertices() > 8) {
    auto strip = refine::geometric_strip(sub, cut.part, cut.separator_distance,
                                         opt.strip_factor);
    refine::FmOptions fm;
    // Asymmetric target: cap each side at (fraction +- epsilon) of total.
    Weight total = sub.total_vertex_weight();
    fm.side0_cap = static_cast<Weight>((fraction + opt.epsilon) *
                                       static_cast<double>(total));
    fm.side1_cap = static_cast<Weight>((1.0 - fraction + opt.epsilon) *
                                       static_cast<double>(total));
    refine::fm_refine(sub, cut.part, fm, strip);
  }

  std::vector<VertexId> left, right;
  left.reserve(vertices.size() / 2 + 1);
  right.reserve(vertices.size() / 2 + 1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    (cut.part[static_cast<VertexId>(i)] == 0 ? left : right)
        .push_back(vertices[i]);
  }
  bisect_region(g, coords, std::move(left), left_parts, first_part, opt,
                salt * 2 + 1, out);
  bisect_region(g, coords, std::move(right), parts - left_parts,
                first_part + left_parts, opt, salt * 2 + 2, out);
}

}  // namespace

Weight kway_cut(const CsrGraph& g, std::span<const std::uint32_t> part) {
  SP_ASSERT(part.size() == g.num_vertices());
  Weight cut2 = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    auto ws = g.edge_weights_of(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (part[v] != part[nbrs[k]]) cut2 += ws[k];
    }
  }
  return cut2 / 2;
}

double kway_imbalance(const CsrGraph& g, std::span<const std::uint32_t> part,
                      std::uint32_t parts) {
  SP_ASSERT(parts >= 1);
  std::vector<Weight> weights(parts, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    SP_ASSERT(part[v] < parts);
    weights[part[v]] += g.vertex_weight(v);
  }
  double ideal = static_cast<double>(g.total_vertex_weight()) /
                 static_cast<double>(parts);
  if (ideal <= 0.0) return 0.0;
  Weight max_w = *std::max_element(weights.begin(), weights.end());
  return static_cast<double>(max_w) / ideal - 1.0;
}

KwayResult kway_partition_with_coords(const CsrGraph& g,
                                      std::span<const Vec2> coords,
                                      const KwayOptions& opt) {
  SP_ASSERT(coords.size() == g.num_vertices());
  SP_ASSERT(opt.parts >= 1);
  KwayResult result;
  result.part.assign(g.num_vertices(), 0);
  result.embedding.assign(coords.begin(), coords.end());
  if (g.num_vertices() == 0) return result;

  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  bisect_region(g, coords, std::move(all), opt.parts, 0, opt, 1, &result.part);

  result.total_cut = kway_cut(g, result.part);
  result.imbalance = kway_imbalance(g, result.part, opt.parts);
  return result;
}

KwayResult kway_partition(const CsrGraph& g, const KwayOptions& opt) {
  // Embed once via the ScalaPart pipeline (the first bisection comes for
  // free with it, but re-cutting from the embedding keeps the recursion
  // uniform and the code simple).
  ScalaPartOptions sp_opt;
  sp_opt.nranks = opt.nranks;
  sp_opt.seed = opt.seed;
  auto sp = scalapart_partition(g, sp_opt);
  return kway_partition_with_coords(g, sp.embedding, opt);
}

}  // namespace sp::core
