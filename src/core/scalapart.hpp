// ScalaPart: the complete pipeline of the paper.
//
//   coarsen (distributed heavy-edge matching, keep every other level)
//   -> multilevel fixed-lattice parallel embedding
//   -> parallel geometric mesh partitioning (SP-PG7-NL)
//   -> Fiduccia-Mattheyses refinement on a geometric strip.
//
// The pipeline executes as an SPMD program on the deterministic BSP
// runtime (src/comm): cut sizes are computed for real by P cooperating
// ranks; execution *time* is the runtime's modeled virtual clock (see
// DESIGN.md on why wall-clock cannot measure 1024-rank scaling on one
// node). P = 1 degenerates to a purely sequential run of the same
// algorithm, which is how the library serves single-process users.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/fault_plan.hpp"
#include "comm/trace.hpp"
#include "embed/lattice_parallel.hpp"
#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "partition/parallel_gmt.hpp"

namespace sp::core {

struct ScalaPartOptions {
  /// Number of simulated ranks; must be a power of two.
  std::uint32_t nranks = 16;
  comm::CostModel cost_model = comm::CostModel::nehalem_qdr();

  /// Coarsening: target coarsest size; 2 matching rounds per retained
  /// level gives the paper's ~1/4 shrink. 0 = automatic: N/256 clamped to
  /// [64, 4096], which keeps the coarsest graph a fixed *fraction* of the
  /// input (the paper picks k so V^k is "suitably small"; a fixed absolute
  /// size would make the serial coarse-level embedding an outsized Amdahl
  /// term on scaled-down graphs).
  graph::VertexId coarsest_size = 0;
  std::uint32_t matching_rounds = 3;
  /// Matching+contraction rounds per retained hierarchy level: 2 is the
  /// paper's keep-every-other-graph rule (~1/4 shrink); 1 keeps every
  /// level (~1/2 shrink, the classic multilevel layout — ablation).
  std::uint32_t hierarchy_rounds = 2;

  embed::LatticeEmbedOptions embed;
  partition::ParallelGmtOptions gmt;

  std::uint64_t seed = 42;

  /// Execution backend for the BSP engine: kFiber (default, one OS
  /// thread) or kThreads (one thread per rank, `threads` runnable at a
  /// time). The partition, trace, and modeled clocks are bit-identical
  /// across backends and thread counts; only wall time changes.
  exec::Backend backend = exec::Backend::kFiber;
  /// Worker-thread cap for the threads backend; 0 = hw_concurrency.
  std::uint32_t threads = 0;

  /// Fiber resume order of the BSP engine. ScalaPart is schedule-correct:
  /// every schedule yields a bit-identical partition and trace (the
  /// determinism auditor in sp::analysis verifies this), so this knob
  /// exists for auditing, not tuning.
  comm::Schedule schedule = comm::Schedule::kRoundRobin;
  std::uint64_t schedule_seed = 0x5EEDu;

  /// Deterministic faults injected into the BSP run (empty = fault-free).
  /// The same plan + seed reproduces the identical failure, recovery,
  /// trace, and partition bit-for-bit.
  comm::FaultPlan faults;
  /// Recover from injected rank crashes: survivors shrink to a new
  /// communicator, the largest power-of-two prefix resumes from the last
  /// level-boundary checkpoint (spare survivors retire), and the pipeline
  /// completes on the reduced rank set. When false, a crash propagates
  /// out of scalapart_partition as comm::RankFailedError.
  bool recover_on_failure = true;
  /// Recovery budget: maximum shrink-and-resume rounds before the run
  /// gives up with RecoveryExhaustedError. 0 = unbounded (recover as
  /// long as at least one rank survives).
  std::uint32_t max_recoveries = 0;
  /// Timeout-based failure detector on the modeled clock (DESIGN.md §4a).
  /// Disabled by default; when enabled, a rank whose rendezvous arrival
  /// lags its group by more than the deadline is retried with modeled
  /// backoff and, past max_retries, declared failed and shrunk away like
  /// a crash.
  comm::FailureDetectorOptions detector;
  /// Directory for durable level-boundary checkpoints (empty = in-memory
  /// only). When set, every embed checkpoint is additionally serialized
  /// to <checkpoint_dir>/scalapart.ckpt (versioned, checksummed frames;
  /// atomic replace), and resume_from_checkpoint() can cold-restart the
  /// pipeline from it after process death. Durable persistence is
  /// host-side I/O: it costs no modeled time.
  std::string checkpoint_dir;

  /// Flight recorder (obs::flight, DESIGN.md §9): per-rank ring capacity
  /// of the always-on black box scalapart_run installs when no recorder
  /// is active. 0 disables it. Ignored when the build has SP_OBS off or
  /// when an outer ScopedFlightRecording is already installed (that
  /// recorder is reused, as the chaos harness does).
  std::uint32_t flight_capacity = 256;
  /// Where abnormal exits dump the flight record. Empty = use the
  /// SP_FLIGHT_DIR environment variable; when that is empty too, no dump
  /// is written (recording still happens — an enclosing harness may dump
  /// the recorder itself).
  std::string flight_dir;

  /// Convenience: derive all per-stage seeds from `seed` and `nranks` so
  /// different P values explore different separators (as in the paper,
  /// where cut size varies with P).
  ScalaPartOptions with_seed(std::uint64_t s) const {
    ScalaPartOptions o = *this;
    o.seed = s;
    return o;
  }
};

struct StageBreakdown {
  double coarsen_seconds = 0.0;
  double embed_seconds = 0.0;
  double partition_seconds = 0.0;
  double embed_comm_seconds = 0.0;    // within embed_seconds
  double embed_compute_seconds = 0.0; // within embed_seconds
  double total() const {
    return coarsen_seconds + embed_seconds + partition_seconds;
  }
};

/// What fault tolerance cost this run (all zeros on a fault-free run
/// without scheduled crashes; checkpointing is only enabled when the
/// fault plan contains crashes).
struct RecoveryStats {
  /// World ranks killed by the fault plan, in order of death.
  std::vector<std::uint32_t> failed_ranks;
  /// Shrink-and-resume rounds performed.
  std::uint32_t recoveries = 0;
  /// Ranks still computing when the pipeline completed (power of two;
  /// equals nranks when nothing failed).
  std::uint32_t final_active_ranks = 0;
  /// Modeled time spent writing level-boundary checkpoints (max over
  /// ranks) and recovering (shrink + redistribution), respectively.
  double checkpoint_seconds = 0.0;
  double recover_seconds = 0.0;
  /// Messages charged to checkpointing / recovery, summed over ranks.
  std::uint64_t checkpoint_messages = 0;
  std::uint64_t recover_messages = 0;
  /// Failure-detector totals for the run (zeros when the detector is
  /// off).
  comm::DetectorStats detector;
  /// Durable checkpoints written to checkpoint_dir (0 when in-memory).
  std::uint32_t checkpoints_persisted = 0;
  /// True when this run was cold-started from a durable checkpoint.
  bool resumed_from_disk = false;
};

/// The pipeline could not complete despite fault tolerance being on: the
/// recovery budget (ScalaPartOptions::max_recoveries) was exhausted, or
/// every rank died. Carries the fault-tolerance accounting gathered up to
/// the failure, so callers can report what was survived before giving up.
class RecoveryExhaustedError : public std::runtime_error {
 public:
  RecoveryExhaustedError(const std::string& what, RecoveryStats stats)
      : std::runtime_error("recovery exhausted: " + what),
        stats(std::move(stats)) {}

  RecoveryStats stats;
};

struct ScalaPartResult {
  graph::Bipartition part;
  graph::PartitionReport report;
  /// Modeled parallel execution time (max rank clock), seconds.
  double modeled_seconds = 0.0;
  StageBreakdown stages;
  /// Modeled time of the partition stage alone (SP-PG7-NL, the quantity
  /// Figure 4 compares against RCB).
  double partition_only_seconds = 0.0;
  /// Full per-rank trace for deeper analysis (Fig. 8).
  comm::RunStats stats;
  /// Final embedding (gathered), useful for inspection and examples.
  std::vector<geom::Vec2> embedding;
  std::size_t strip_size = 0;
  /// Fault-tolerance accounting (see RecoveryStats).
  RecoveryStats recovery;
};

/// Runs the full ScalaPart pipeline on `g`. Deterministic given options.
ScalaPartResult scalapart_partition(const graph::CsrGraph& g,
                                    const ScalaPartOptions& opt);

/// Cold-restarts the pipeline from the durable checkpoint in
/// opt.checkpoint_dir (which must be set): coarsening re-runs (it is a
/// deterministic function of the options), the embedding resumes at the
/// checkpointed level with its exact ownership map, and the result is
/// bit-identical to the uninterrupted run of the same options. Throws
/// CheckpointError (core/checkpoint.hpp) when the file is missing,
/// corrupt, or was written by a different graph/seed/rank-count.
ScalaPartResult resume_from_checkpoint(const graph::CsrGraph& g,
                                       const ScalaPartOptions& opt);

/// Partition-only entry point (SP-PG7-NL): for graphs that already have
/// coordinates (the use case of Figure 4), skipping coarsening/embedding.
/// The coordinates are block-distributed and cut with the parallel
/// geometric scheme + strip refinement.
ScalaPartResult sp_pg7nl_partition(const graph::CsrGraph& g,
                                   std::span<const geom::Vec2> coords,
                                   const ScalaPartOptions& opt);

}  // namespace sp::core
