// The paper's nine-graph evaluation suite (Table 1), rebuilt synthetically.
//
// Each entry is a deterministic generator producing the same structure
// class as the UFL/SuiteSparse original at `scale` times the paper's
// vertex count (scale = 1.0 would reproduce the full 1M-21M vertex sizes;
// benches default to 0.01 so a full sweep runs on one core in minutes).
// `paper_*` fields carry the original sizes and the paper's reported
// cut-size ranges so bench output can print paper-vs-measured side by
// side. M counts directed arcs (2x undirected edges), matching the
// paper's Table 1 convention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace sp::core {

struct PaperCutRow {
  // Table 3 of the paper (best - worst cut sizes, absolute).
  long long ptscotch_best = 0, ptscotch_worst = 0;
  long long parmetis_best = 0, parmetis_worst = 0;
  long long scalapart_best = 0, scalapart_worst = 0;
  long long g30 = 0;
  long long rcb = 0;
};

struct SuiteEntry {
  std::string name;          // paper's graph name
  double paper_n_millions;   // Table 1 N
  double paper_m_millions;   // Table 1 M (arcs)
  PaperCutRow paper_cuts;
  // Table 2 of the paper (cut sizes relative to G30 = 1).
  double paper_rel_g7 = 0, paper_rel_g7nl = 0, paper_rel_rcb = 0;
  double paper_rel_avg_sp = 0, paper_rel_best_sp = 0;
};

/// Static registry of the nine graphs with the paper's reported numbers.
const std::vector<SuiteEntry>& paper_suite();

/// Builds the synthetic analogue of suite graph `name` at `scale` of the
/// paper's size. Deterministic given (name, scale, seed).
graph::gen::GeneratedGraph make_suite_graph(const std::string& name,
                                            double scale, std::uint64_t seed);

}  // namespace sp::core
