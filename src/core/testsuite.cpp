#include "core/testsuite.hpp"

#include <cmath>
#include <stdexcept>

#include "support/assert.hpp"

namespace sp::core {

using graph::gen::GeneratedGraph;

const std::vector<SuiteEntry>& paper_suite() {
  // Numbers transcribed from the paper's Tables 1-3.
  static const std::vector<SuiteEntry> suite = {
      {"ecology1", 1.0, 4.99,
       {1094, 1500, 1229, 1446, 1115, 1436, 1394, 1473},
       1.00, 1.01, 1.06, 0.92, 0.80},
      {"ecology2", 0.99, 4.99,
       {1144, 1377, 1236, 1515, 1111, 1555, 1388, 1380},
       0.99, 1.00, 0.99, 0.91, 0.80},
      {"delaunay_n20", 1.05, 6.29,
       {1920, 2091, 2085, 2494, 1339, 2708, 2603, 3018},
       0.96, 1.03, 1.16, 0.82, 0.51},
      {"G3_circuit", 1.58, 7.66,
       {1205, 1592, 1433, 2068, 1199, 1776, 2018, 2069},
       1.00, 1.01, 1.03, 0.70, 0.59},
      {"kkt_power", 2.06, 12.77,
       {19877, 76267, 20930, 106390, 15998, 40521, 31503, 47563},
       1.46, 1.45, 1.51, 0.92, 0.51},
      {"hugetrace-00000", 4.59, 13.76,
       {770, 937, 786, 1117, 780, 1063, 1018, 1112},
       1.03, 1.03, 1.09, 0.85, 0.77},
      {"delaunay_n23", 8.39, 50.33,
       {5521, 7674, 5959, 8248, 5466, 6841, 7578, 9639},
       1.08, 1.29, 1.27, 0.78, 0.72},
      {"delaunay_n24", 16.77, 100.66,
       {7884, 9544, 8775, 12086, 7835, 12695, 10643, 13176},
       0.98, 1.07, 1.24, 0.86, 0.74},
      {"hugebubbles-00020", 21.20, 63.58,
       {1474, 1847, 1656, 2170, 1563, 2278, 2059, 2363},
       1.10, 1.10, 1.15, 0.86, 0.76},
  };
  return suite;
}

GeneratedGraph make_suite_graph(const std::string& name, double scale,
                                std::uint64_t seed) {
  SP_ASSERT(scale > 0.0);
  auto scaled = [scale](double paper_millions) {
    auto n = static_cast<std::uint32_t>(paper_millions * 1e6 * scale);
    return std::max(n, 256u);
  };
  if (name == "ecology1") {
    auto side = static_cast<std::uint32_t>(std::sqrt(scaled(1.0)));
    auto g = graph::gen::grid2d(side, side);
    g.name = name;
    return g;
  }
  if (name == "ecology2") {
    // Same landscape class, slightly different aspect.
    auto n = scaled(0.99);
    auto rows = static_cast<std::uint32_t>(std::sqrt(n / 1.1));
    auto cols = static_cast<std::uint32_t>(1.1 * rows);
    auto g = graph::gen::grid2d(rows, cols);
    g.name = name;
    return g;
  }
  if (name == "delaunay_n20") {
    auto g = graph::gen::delaunay(scaled(1.05), seed ^ 0xD20ull);
    g.name = name;
    return g;
  }
  if (name == "G3_circuit") {
    auto side = static_cast<std::uint32_t>(std::sqrt(scaled(1.58)));
    auto g = graph::gen::circuit(side, side, 0.45, seed ^ 0x63ull);
    g.name = name;
    return g;
  }
  if (name == "kkt_power") {
    auto n = scaled(2.06);
    auto g = graph::gen::kkt_power(n, std::max(4u, n / 500), 60,
                                   seed ^ 0x1207ull);
    g.name = name;
    return g;
  }
  if (name == "hugetrace-00000") {
    auto g = graph::gen::trace(scaled(4.59), 16.0, seed ^ 0x7ACEull);
    g.name = name;
    return g;
  }
  if (name == "delaunay_n23") {
    auto g = graph::gen::delaunay(scaled(8.39), seed ^ 0xD23ull);
    g.name = name;
    return g;
  }
  if (name == "delaunay_n24") {
    auto g = graph::gen::delaunay(scaled(16.77), seed ^ 0xD24ull);
    g.name = name;
    return g;
  }
  if (name == "hugebubbles-00020") {
    auto g = graph::gen::bubbles(scaled(21.20), 12, seed ^ 0xB0Bull);
    g.name = name;
    return g;
  }
  throw std::runtime_error("unknown suite graph: " + name);
}

}  // namespace sp::core
