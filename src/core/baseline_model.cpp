#include "core/baseline_model.hpp"

#include <algorithm>
#include <cmath>

#include "graph/distributed_graph.hpp"

namespace sp::core {

namespace {

double ceil_log2(std::uint32_t p) {
  return p <= 1 ? 0.0 : std::ceil(std::log2(static_cast<double>(p)));
}

/// Average per-rank ghost count of `g` block-distributed over p ranks,
/// measured on a handful of sample ranks (cheap, real halo sizes).
double mean_ghosts(const graph::CsrGraph& g, std::uint32_t p) {
  if (p <= 1 || g.num_vertices() < p) return 0.0;
  const std::uint32_t samples = std::min<std::uint32_t>(p, 4);
  double total = 0.0;
  for (std::uint32_t k = 0; k < samples; ++k) {
    std::uint32_t rank = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(k) * p) / samples);
    graph::LocalView view(g, rank, p);
    total += static_cast<double>(view.ghosts().size());
  }
  return total / samples;
}

}  // namespace

BaselineTimeBreakdown modeled_multilevel_time(
    const coarsen::Hierarchy& hierarchy, std::uint32_t P,
    partition::MlPreset preset, const comm::CostModel& model) {
  BaselineTimeBreakdown out;
  const bool parmetis = preset == partition::MlPreset::kParMetisLike;

  // Per-edge work-unit constants (same "unit" as CostModel::seconds_per_unit).
  // Calibrated against wall-clock runs of this repo's own sequential
  // multilevel partitioner (multilevel_kl) at P = 1, which is the honest
  // serial anchor for these baselines.
  const double c_match = parmetis ? 12.0 : 16.0;  // per arc per matching round
  const double c_contract = 10.0;                 // per arc
  const double c_refine = parmetis ? 8.0 : 24.0;  // per refined arc per sweep
  const std::uint32_t match_rounds = 3;
  const std::uint32_t refine_sweeps = parmetis ? 2 : 6;
  // Synchronized move rounds inside one refinement sweep. Boundary-greedy
  // needs one halo refresh per sweep; parallel FM needs several rounds of
  // propose/commit per pass (Pt-Scotch's band FM).
  const std::uint32_t sync_rounds = parmetis ? 1 : 6;
  // FM-style refinement is inherently sequential (moves depend on prior
  // moves); distributed implementations recover only limited parallelism
  // from it. This cap — small for the band-FM scheme, larger for the
  // sweep-parallel greedy scheme — is what makes Pt-Scotch's uncoarsening
  // stop scaling first, then ParMetis's, exactly the ordering the paper
  // reports (ParMetis 4.2x faster than Pt-Scotch at P=1024, ScalaPart 16x).
  const double refine_parallelism_cap = parmetis ? 128.0 : 12.0;

  for (std::size_t level = 0; level < hierarchy.num_levels(); ++level) {
    const graph::CsrGraph& g = hierarchy.graph_at(level);
    const double n = static_cast<double>(g.num_vertices());
    const double arcs = static_cast<double>(g.num_arcs());
    // Ranks stop being useful once a level has fewer than ~32 vertices per
    // rank; real codes fold ranks in (and pay a gather), modeled here by
    // capping the effective parallelism.
    const auto p_eff = static_cast<std::uint32_t>(std::clamp(
        n / 32.0, 1.0, static_cast<double>(P)));
    const double log_p = ceil_log2(p_eff);
    const double ghosts = mean_ghosts(g, p_eff);
    const double nbr_ranks = p_eff > 1 ? std::min<double>(8.0, p_eff - 1) : 0.0;

    // --- Coarsening at this level (all levels except the coarsest). ---
    if (level + 1 < hierarchy.num_levels()) {
      double compute = (arcs / p_eff) * (c_match * match_rounds + c_contract);
      double comm = match_rounds *
                        (model.ts * std::max(1.0, nbr_ranks) +
                         model.tw * ghosts * 12.0) +
                    (model.ts * log_p);  // one allreduce for sizes
      // Building the coarse graph redistributes vertices with irregular
      // alltoallv operations: O(P) message latency each, several per level
      // (matching resolution, coarse-graph assembly, projection; the
      // band-FM baseline adds band-graph construction). This is the
      // communication ScalaPart's nearest-neighbour projection avoids
      // (paper Sec. 3.1) and the reason the baselines stop scaling; the
      // per-level counts below are calibrated so the P=1024 orderings
      // match the paper's Table 4.
      double redistribute =
          model.ts * static_cast<double>(p_eff) * (parmetis ? 4.5 : 9.0);
      out.coarsen_seconds +=
          compute * model.seconds_per_unit + comm + redistribute;
    }

    // --- Refinement when uncoarsening back through this level. ---
    if (level + 1 < hierarchy.num_levels() || hierarchy.num_levels() == 1) {
      // Refined arcs: the whole frontier region, a few times the measured
      // halo, but never less than a fixed slice of the level.
      double avg_deg = n > 0 ? arcs / n : 0.0;
      double frontier_arcs =
          std::max({ghosts * avg_deg * static_cast<double>(p_eff) * 0.25,
                    arcs / 16.0, avg_deg});
      double p_refine = std::min(static_cast<double>(p_eff),
                                 refine_parallelism_cap);
      double compute = refine_sweeps * c_refine * frontier_arcs / p_refine;
      double comm = refine_sweeps * sync_rounds *
                    (model.ts * (log_p + std::max(1.0, nbr_ranks)) +
                     model.tw * ghosts * 5.0);
      out.refine_seconds += compute * model.seconds_per_unit + comm;
    }
  }

  // --- Initial bisection: gather the coarsest graph to one rank. ---
  {
    const graph::CsrGraph& g = hierarchy.coarsest();
    const double arcs = static_cast<double>(g.num_arcs());
    double gather = model.ts * ceil_log2(P) + model.tw * arcs * 12.0;
    double compute = arcs * 160.0;  // best-of-k graph growing + FM polish
    out.initial_seconds += gather + compute * model.seconds_per_unit +
                           model.ts * ceil_log2(P);  // scatter back
  }
  return out;
}

}  // namespace sp::core
