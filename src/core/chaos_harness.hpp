// Chaos harness: one seeded fuzz case of the fault-tolerant pipeline.
//
// A case derives a random FaultPlan (comm/chaos.hpp) plus randomized
// recovery knobs (budget, failure detector) from its seed, runs ScalaPart
// under it, and checks the survivability contract: the run either
// completes with a validator-clean partition or raises a structured
// RecoveryExhaustedError. Any other outcome — an unexpected exception
// type, a deadlock, a validator violation — is a failed case, and because
// everything is a pure function of (graph, options, seed), a failing seed
// replays bit-for-bit.
//
// Shared by the chaos tests (tests/test_chaos.cpp) and the sweep tool
// (tools/chaos_fuzz.cpp) so both enforce the identical invariant.
#pragma once

#include <cstdint>
#include <string>

#include "core/scalapart.hpp"
#include "graph/csr_graph.hpp"

namespace sp::core {

struct ChaosCaseResult {
  /// The run completed with a validator-clean partition.
  bool completed = false;
  /// The run raised RecoveryExhaustedError (a legal outcome).
  bool exhausted = false;
  /// Non-empty on contract violation: unexpected exception type,
  /// validator violation, or (via the test driver's timeout) a hang.
  std::string error;
  /// Human-readable description of the injected plan + knobs.
  std::string plan;
  /// Fingerprint of the partition side array (0 unless completed).
  std::uint64_t part_fp = 0;
  /// RunStats fingerprint (clocks/traces/failures; 0 unless completed).
  std::uint64_t stats_fp = 0;
  std::uint32_t recoveries = 0;
  std::uint32_t final_active = 0;
  std::size_t failed_ranks = 0;
  /// Flight-recorder dump written for this case ("" when none: the case
  /// passed, SP_OBS is off, or no dump directory was configured via
  /// ScalaPartOptions::flight_dir / SP_FLIGHT_DIR). Contract violations
  /// always attempt a dump; legal abnormal exits dump inside scalapart.
  std::string dump_path;

  /// The survivability contract.
  bool ok() const { return (completed || exhausted) && error.empty(); }
};

/// Runs one seeded chaos case of ScalaPart on `g`. `base` supplies the
/// non-chaos options (nranks, backend, threads, seed...); the fault plan,
/// the recovery budget, and the failure-detector settings are derived
/// from `case_seed` and overwrite the corresponding fields.
ChaosCaseResult run_chaos_case(const graph::CsrGraph& g,
                               const ScalaPartOptions& base,
                               std::uint64_t case_seed);

}  // namespace sp::core
