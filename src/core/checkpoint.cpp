#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "comm/frame_io.hpp"

namespace sp::core {

namespace {

/// Fixed-layout identity + geometry frame (frame 0 of the file). Kept
/// trivially copyable so the frame payload is a straight memcpy; any
/// layout change must bump comm::kFrameFormatVersion.
struct MetaFrame {
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t seed;
  std::uint32_t nranks;
  std::uint32_t pl;
  std::uint64_t level;
  double box[4];  // lo.x, lo.y, hi.x, hi.y
};
static_assert(std::is_trivially_copyable_v<MetaFrame>);

}  // namespace

embed::EmbedCheckpoint PipelineCheckpoint::to_embed_checkpoint() const {
  embed::EmbedCheckpoint c;
  c.valid = true;
  c.level = static_cast<std::size_t>(level);
  c.coords = coords;
  c.box = box;
  c.owner = owner;
  c.pl = pl;
  return c;
}

std::string checkpoint_path(const std::string& dir) {
  return dir + "/scalapart.ckpt";
}

void save_checkpoint(const std::string& path, const PipelineCheckpoint& ckpt) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw CheckpointError("cannot open '" + tmp + "' for writing");
    comm::write_frame_header(out);

    MetaFrame meta{};
    meta.num_vertices = ckpt.num_vertices;
    meta.num_edges = ckpt.num_edges;
    meta.seed = ckpt.seed;
    meta.nranks = ckpt.nranks;
    meta.pl = ckpt.pl;
    meta.level = ckpt.level;
    meta.box[0] = ckpt.box.lo[0];
    meta.box[1] = ckpt.box.lo[1];
    meta.box[2] = ckpt.box.hi[0];
    meta.box[3] = ckpt.box.hi[1];
    comm::write_frame(out, &meta, sizeof meta);
    comm::write_frame(out, ckpt.coords.data(),
                      ckpt.coords.size() * sizeof(geom::Vec2));
    comm::write_frame(out, ckpt.owner.data(),
                      ckpt.owner.size() * sizeof(std::uint32_t));
    out.flush();
    if (!out) throw CheckpointError("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

PipelineCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CheckpointError("cannot open '" + path + "' for reading");
  PipelineCheckpoint ckpt;
  try {
    comm::read_frame_header(in);
    const std::vector<std::byte> meta_bytes = comm::read_frame(in, 0);
    if (meta_bytes.size() != sizeof(MetaFrame)) {
      throw CheckpointError("'" + path + "': meta frame has " +
                            std::to_string(meta_bytes.size()) +
                            " bytes, expected " +
                            std::to_string(sizeof(MetaFrame)));
    }
    MetaFrame meta{};
    std::memcpy(&meta, meta_bytes.data(), sizeof meta);
    ckpt.num_vertices = meta.num_vertices;
    ckpt.num_edges = meta.num_edges;
    ckpt.seed = meta.seed;
    ckpt.nranks = meta.nranks;
    ckpt.pl = meta.pl;
    ckpt.level = meta.level;
    ckpt.box.lo = geom::vec2(meta.box[0], meta.box[1]);
    ckpt.box.hi = geom::vec2(meta.box[2], meta.box[3]);

    const std::vector<std::byte> coord_bytes = comm::read_frame(in, 1);
    const std::vector<std::byte> owner_bytes = comm::read_frame(in, 2);
    if (coord_bytes.size() != ckpt.num_vertices * sizeof(geom::Vec2) ||
        owner_bytes.size() != ckpt.num_vertices * sizeof(std::uint32_t)) {
      throw CheckpointError("'" + path +
                            "': frame sizes disagree with vertex count");
    }
    ckpt.coords.resize(ckpt.num_vertices);
    ckpt.owner.resize(ckpt.num_vertices);
    if (ckpt.num_vertices != 0) {
      std::memcpy(ckpt.coords.data(), coord_bytes.data(), coord_bytes.size());
      std::memcpy(ckpt.owner.data(), owner_bytes.data(), owner_bytes.size());
    }
  } catch (const comm::FrameError& e) {
    throw CheckpointError("'" + path + "': " + e.what());
  }
  for (std::uint32_t r : ckpt.owner) {
    if (r >= ckpt.pl) {
      throw CheckpointError("'" + path +
                            "': owner entry exceeds active rank count");
    }
  }
  return ckpt;
}

}  // namespace sp::core
