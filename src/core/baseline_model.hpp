// Modeled parallel execution times for the multilevel baselines.
//
// The paper compares ScalaPart's time against ParMetis and Pt-Scotch on
// P = 1..1024 MPI ranks. Our reproduction runs the baselines' *algorithms*
// sequentially for cut quality (src/partition/multilevel_kl); their
// *parallel time* is produced here by walking a real coarsening hierarchy
// of the input graph and charging, per level, the computation and
// communication a distributed multilevel partitioner performs — using the
// same CostModel constants as the BSP runtime, and per-rank halo sizes
// measured from real block distributions of each level graph. The presets
// encode the baselines' published structure:
//  - ParMetis-like: 3 matching rounds per level, 2 cheap boundary-greedy
//    refinement sweeps per uncoarsening level (few synchronizations).
//  - Pt-Scotch-like: band FM with several passes per level, each pass a
//    sequence of synchronized move rounds — the extra latency * log P per
//    level is exactly the uncoarsening/refinement cost the paper blames
//    for Pt-Scotch's poor scaling (Sec. 1, Sec. 3).
#pragma once

#include <cstdint>

#include "comm/cost_model.hpp"
#include "coarsen/hierarchy.hpp"
#include "graph/csr_graph.hpp"
#include "partition/multilevel_kl.hpp"

namespace sp::core {

struct BaselineTimeBreakdown {
  double coarsen_seconds = 0.0;
  double initial_seconds = 0.0;
  double refine_seconds = 0.0;
  double total() const {
    return coarsen_seconds + initial_seconds + refine_seconds;
  }
};

/// Modeled time for one bisection at P ranks. The hierarchy should be
/// built with rounds_per_level = 1 (classic halving) on the target graph;
/// it is reused across P values.
BaselineTimeBreakdown modeled_multilevel_time(
    const coarsen::Hierarchy& hierarchy, std::uint32_t P,
    partition::MlPreset preset, const comm::CostModel& model);

}  // namespace sp::core
