// Durable pipeline checkpoints: serializing ScalaPart's level-boundary
// embed checkpoint to disk so a partition can resume after a cold restart
// (process death, not just in-run rank failure).
//
// A checkpoint file carries the identity of the run that wrote it (graph
// size, seed, rank count) alongside the embedding state (level, box,
// coordinates, ownership map). Identity is validated on load: resuming a
// checkpoint against a different graph or configuration is a usage error,
// not a silent wrong answer. The payload rides in the versioned,
// checksummed frame container of comm/frame_io.hpp, and writes go through
// a temp-file-plus-rename so a crash mid-write never leaves a truncated
// file where a valid one stood.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "embed/lattice_parallel.hpp"
#include "geometry/box.hpp"
#include "geometry/vec.hpp"

namespace sp::core {

/// A checkpoint file that cannot be written, read, or reconciled with the
/// run trying to resume it (wrong graph, wrong seed, corrupted frames —
/// frame-level corruption arrives wrapped from comm::FrameError).
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error("checkpoint: " + what) {}
};

/// On-disk image of one embed-level checkpoint plus the identity of the
/// run that wrote it.
struct PipelineCheckpoint {
  // ---- identity ----
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t seed = 0;
  std::uint32_t nranks = 0;
  // ---- embedding state (mirrors embed::EmbedCheckpoint) ----
  std::uint64_t level = 0;
  std::uint32_t pl = 0;  // active rank count that wrote the level
  geom::Box box;
  std::vector<geom::Vec2> coords;       // by vertex id at `level`
  std::vector<std::uint32_t> owner;     // owning rank per vertex at `level`

  embed::EmbedCheckpoint to_embed_checkpoint() const;
};

/// Canonical checkpoint file path inside a checkpoint directory.
std::string checkpoint_path(const std::string& dir);

/// Atomically writes `ckpt` to `path` (temp file + rename). Throws
/// CheckpointError if the file cannot be written.
void save_checkpoint(const std::string& path, const PipelineCheckpoint& ckpt);

/// Reads and validates a checkpoint file. Throws CheckpointError for a
/// missing, truncated, corrupted, or internally inconsistent file.
PipelineCheckpoint load_checkpoint(const std::string& path);

}  // namespace sp::core
