// Recursive k-way partitioning on top of any bisection method.
//
// The paper evaluates single bisections; practical deployments (its own
// motivating use case: distributing a simulation over P processors) need
// k parts. This driver applies a bisector recursively with proportional
// weight targets, so k need not be a power of two, and reuses ScalaPart's
// embedding across the recursion: the graph is embedded once and every
// sub-bisection cuts the induced sub-embedding geometrically, which is
// exactly how the paper suggests the method amortises its embedding cost
// over multiple cuts ("the considerable costs of computing an embedding
// are not amortized over multiple cuts" in their single-cut experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/vec.hpp"
#include "graph/csr_graph.hpp"
#include "partition/geometric_mesh.hpp"

namespace sp::core {

struct KwayOptions {
  std::uint32_t parts = 4;
  /// Per-bisection balance tolerance.
  double epsilon = 0.05;
  /// Simulated ranks for the embedding run (power of two).
  std::uint32_t nranks = 16;
  std::uint64_t seed = 42;
  /// Geometric variant used for every sub-bisection.
  partition::GeometricMeshOptions gmt = partition::GeometricMeshOptions::g7nl();
  /// Apply strip FM after each geometric sub-bisection.
  bool strip_refine = true;
  double strip_factor = 6.0;
};

struct KwayResult {
  /// part id in [0, parts) per vertex.
  std::vector<std::uint32_t> part;
  /// Total weight of edges between different parts.
  graph::Weight total_cut = 0;
  /// max part weight / ideal - 1.
  double imbalance = 0.0;
  /// The embedding computed once and reused for every sub-bisection.
  std::vector<geom::Vec2> embedding;
};

/// k-way partition via ScalaPart: one embedding run, then recursive
/// geometric bisection of the embedded subgraphs.
KwayResult kway_partition(const graph::CsrGraph& g, const KwayOptions& opt);

/// k-way partition when coordinates already exist (no embedding run).
KwayResult kway_partition_with_coords(const graph::CsrGraph& g,
                                      std::span<const geom::Vec2> coords,
                                      const KwayOptions& opt);

/// Quality measures for a k-way assignment.
graph::Weight kway_cut(const graph::CsrGraph& g,
                       std::span<const std::uint32_t> part);
double kway_imbalance(const graph::CsrGraph& g,
                      std::span<const std::uint32_t> part,
                      std::uint32_t parts);

}  // namespace sp::core
