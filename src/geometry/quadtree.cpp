#include "geometry/quadtree.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace sp::geom {

QuadTree::QuadTree(std::span<const Vec2> points, std::span<const double> masses,
                   std::uint32_t leaf_capacity)
    : points_(points.begin(), points.end()) {
  if (masses.empty()) {
    masses_.assign(points.size(), 1.0);
  } else {
    SP_ASSERT(masses.size() == points.size());
    masses_.assign(masses.begin(), masses.end());
  }
  point_index_.resize(points_.size());
  std::iota(point_index_.begin(), point_index_.end(), 0u);
  bounds_ = Box::of(points_).inflated(1e-9);
  if (points_.empty()) return;

  nodes_.emplace_back();
  nodes_[0].box = bounds_;
  build(0, 0, static_cast<std::uint32_t>(points_.size()),
        std::max(1u, leaf_capacity), 0);
}

void QuadTree::build(std::uint32_t node, std::uint32_t begin, std::uint32_t end,
                     std::uint32_t leaf_capacity, std::uint32_t depth) {
  Node& n = nodes_[node];
  n.point_begin = begin;
  n.point_end = end;

  double mass = 0.0;
  Vec2 com{};
  for (std::uint32_t i = begin; i < end; ++i) {
    double m = masses_[point_index_[i]];
    mass += m;
    com += points_[point_index_[i]] * m;
  }
  n.mass = mass;
  n.center_of_mass = mass > 0.0 ? com / mass : n.box.center();

  if (end - begin <= leaf_capacity || depth >= kMaxDepth) return;

  const Vec2 mid = n.box.center();
  // Partition the index range into the 4 quadrants (order: SW, SE, NW, NE)
  // with two nested stable splits: first by y, then by x.
  auto base = point_index_.begin();
  auto y_split = std::partition(base + begin, base + end, [&](std::uint32_t p) {
    return points_[p][1] < mid[1];
  });
  auto x_split_lo =
      std::partition(base + begin, y_split,
                     [&](std::uint32_t p) { return points_[p][0] < mid[0]; });
  auto x_split_hi =
      std::partition(y_split, base + end,
                     [&](std::uint32_t p) { return points_[p][0] < mid[0]; });

  std::array<std::uint32_t, 5> cuts = {
      begin, static_cast<std::uint32_t>(x_split_lo - base),
      static_cast<std::uint32_t>(y_split - base),
      static_cast<std::uint32_t>(x_split_hi - base), end};

  std::int32_t first_child = static_cast<std::int32_t>(nodes_.size());
  nodes_[node].first_child = first_child;
  for (int q = 0; q < 4; ++q) nodes_.emplace_back();

  // Child boxes: q = {0:SW, 1:SE, 2:NW, 3:NE}
  const Box parent_box = nodes_[node].box;
  for (int q = 0; q < 4; ++q) {
    Box child;
    child.lo = vec2(q % 2 == 0 ? parent_box.lo[0] : mid[0],
                    q < 2 ? parent_box.lo[1] : mid[1]);
    child.hi = vec2(q % 2 == 0 ? mid[0] : parent_box.hi[0],
                    q < 2 ? mid[1] : parent_box.hi[1]);
    nodes_[static_cast<std::size_t>(first_child) + q].box = child;
  }
  for (int q = 0; q < 4; ++q) {
    if (cuts[q] < cuts[q + 1]) {
      build(static_cast<std::uint32_t>(first_child + q), cuts[q], cuts[q + 1],
            leaf_capacity, depth + 1);
    } else {
      Node& empty = nodes_[static_cast<std::size_t>(first_child) + q];
      empty.point_begin = empty.point_end = cuts[q];
    }
  }
}

Vec2 QuadTree::accumulate(
    const Vec2& query, std::int64_t skip, double theta,
    const std::function<Vec2(const Vec2& delta, double mass)>& kernel) const {
  return accumulate_with(query, skip, theta, kernel);
}

double QuadTree::total_mass() const {
  return nodes_.empty() ? 0.0 : nodes_[0].mass;
}

}  // namespace sp::geom
