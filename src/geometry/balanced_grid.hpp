// Rectilinear, load-balanced grid decomposition.
//
// The paper maps the embedded graph onto the processor grid with Zoltan's
// RCB ("we apply a recursive coordinate bisection scheme such as the one
// in Zoltan to map vertices ... to some p x q processor grid"), so the
// sub-domains B_{i,j} hold near-equal numbers of vertices even when the
// layout is dense in places. BalancedGrid reproduces that: row boundaries
// are y-quantiles of a point sample, and each row band gets its own
// x-quantile column boundaries. Cells remain axis-aligned rectangles, so
// the lattice machinery (beta vertices, L1-nearest ghost clamping) is
// unchanged — only the cell boundaries move.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/vec.hpp"
#include "support/assert.hpp"

namespace sp::geom {

class BalancedGrid {
 public:
  /// Builds from a sample of points (quantile boundaries). The sample
  /// should be drawn proportionally to ownership; an empty sample yields a
  /// uniform grid over `bounds`.
  BalancedGrid(const Box& bounds, std::uint32_t rows, std::uint32_t cols,
               std::span<const Vec2> sample);

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  const Box& bounds() const { return bounds_; }

  std::pair<std::uint32_t, std::uint32_t> cell_of(const Vec2& p) const {
    std::uint32_t row = locate(row_bounds_, p[1]);
    std::uint32_t col = locate(col_bounds_[row], p[0]);
    return {row, col};
  }

  std::uint32_t cell_index(const Vec2& p) const {
    auto [row, col] = cell_of(p);
    return row * cols_ + col;
  }

  Box cell_box(std::uint32_t row, std::uint32_t col) const {
    SP_ASSERT(row < rows_ && col < cols_);
    Box box;
    box.lo = vec2(col_bounds_[row][col], row_bounds_[row]);
    box.hi = vec2(col_bounds_[row][col + 1], row_bounds_[row + 1]);
    return box;
  }

  /// The paper's ghost rule, on the balanced cells: present the ghost as
  /// if it lay in the L1-nearest of the owner's neighbouring cells.
  Vec2 clamp_to_neighbor(std::uint32_t owner_row, std::uint32_t owner_col,
                         const Vec2& ghost) const {
    auto [gr, gc] = cell_of(ghost);
    auto nr = std::clamp<std::int64_t>(gr, std::int64_t(owner_row) - 1,
                                       std::int64_t(owner_row) + 1);
    auto nc = std::clamp<std::int64_t>(gc, std::int64_t(owner_col) - 1,
                                       std::int64_t(owner_col) + 1);
    nr = std::clamp<std::int64_t>(nr, 0, rows_ - 1);
    nc = std::clamp<std::int64_t>(nc, 0, cols_ - 1);
    Box nb = cell_box(static_cast<std::uint32_t>(nr),
                      static_cast<std::uint32_t>(nc));
    double inset_x = 1e-9 * std::max(nb.width(), 1e-300);
    double inset_y = 1e-9 * std::max(nb.height(), 1e-300);
    return vec2(std::clamp(ghost[0], nb.lo[0] + inset_x, nb.hi[0] - inset_x),
                std::clamp(ghost[1], nb.lo[1] + inset_y, nb.hi[1] - inset_y));
  }

 private:
  static std::uint32_t locate(const std::vector<double>& bounds, double v) {
    // bounds has size k+1; cell i covers [bounds[i], bounds[i+1]).
    auto it = std::upper_bound(bounds.begin() + 1, bounds.end() - 1, v);
    return static_cast<std::uint32_t>(it - bounds.begin() - 1);
  }

  Box bounds_;
  std::uint32_t rows_;
  std::uint32_t cols_;
  std::vector<double> row_bounds_;               // size rows_+1
  std::vector<std::vector<double>> col_bounds_;  // per row, size cols_+1
};

}  // namespace sp::geom
