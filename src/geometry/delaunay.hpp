// Incremental Bowyer-Watson Delaunay triangulation in 2-D.
//
// The paper's delaunay_n*, hugetrace and hugebubbles test graphs are
// Delaunay-type planar meshes; we rebuild that graph class from scratch by
// triangulating synthetic point sets. Point location uses a remembering
// walk from the previously inserted point, which is near O(1) per insert
// when inserts are spatially sorted (the generators sort along a grid
// order), giving ~O(n) total for n points.
//
// Predicates are double precision with a small epsilon; callers should
// jitter regular point patterns (the generators do) to avoid degeneracies.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/vec.hpp"

namespace sp::geom {

/// Triangulates `points` and returns the unique undirected Delaunay edges
/// as (i, j) index pairs with i < j.
std::vector<std::pair<std::uint32_t, std::uint32_t>> delaunay_edges(
    std::span<const Vec2> points);

/// Full triangulation result when the caller needs the triangles too
/// (e.g. mesh-like generators that drop triangles inside holes).
struct Triangulation {
  /// Each triangle as three CCW point indices.
  std::vector<std::array<std::uint32_t, 3>> triangles;
};

Triangulation delaunay_triangulate(std::span<const Vec2> points);

/// Orientation predicate: >0 if (a,b,c) is counter-clockwise.
double orient2d(const Vec2& a, const Vec2& b, const Vec2& c);

/// In-circumcircle predicate: >0 if d lies strictly inside the circumcircle
/// of CCW triangle (a,b,c).
double in_circle(const Vec2& a, const Vec2& b, const Vec2& c, const Vec2& d);

}  // namespace sp::geom
