// Axis-aligned 2-D bounding boxes and the fixed lattice decomposition.
//
// The fixed-lattice embedding views the bounding box B of the embedding as
// a sqrt(P) x sqrt(P) lattice of sub-domains B_{i,j}; Lattice maps
// coordinates to cells and provides the L1-nearest-neighbour clamping rule
// the paper uses for ghost vertices.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>

#include "geometry/vec.hpp"
#include "support/assert.hpp"

namespace sp::geom {

struct Box {
  Vec2 lo{{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()}};
  Vec2 hi{{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()}};

  static Box of(std::span<const Vec2> points) {
    Box box;
    for (const Vec2& p : points) box.expand(p);
    return box;
  }

  void expand(const Vec2& p) {
    lo[0] = std::min(lo[0], p[0]);
    lo[1] = std::min(lo[1], p[1]);
    hi[0] = std::max(hi[0], p[0]);
    hi[1] = std::max(hi[1], p[1]);
  }

  bool contains(const Vec2& p) const {
    return p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1];
  }

  double width() const { return hi[0] - lo[0]; }
  double height() const { return hi[1] - lo[1]; }
  Vec2 center() const { return (lo + hi) * 0.5; }
  bool valid() const { return lo[0] <= hi[0] && lo[1] <= hi[1]; }

  /// Grow symmetrically by a fraction of each extent (avoids points exactly
  /// on the boundary mapping to out-of-range cells).
  Box inflated(double fraction) const {
    Box box = *this;
    double dx = std::max(width(), 1e-12) * fraction;
    double dy = std::max(height(), 1e-12) * fraction;
    box.lo[0] -= dx;
    box.lo[1] -= dy;
    box.hi[0] += dx;
    box.hi[1] += dy;
    return box;
  }

  /// Scale about the origin by s in each dimension (multilevel projection
  /// doubles the box between levels).
  Box scaled(double s) const {
    Box box;
    box.lo = lo * s;
    box.hi = hi * s;
    return box;
  }
};

/// Regular rows x cols decomposition of a box.
class Lattice {
 public:
  Lattice(const Box& box, std::uint32_t rows, std::uint32_t cols)
      : box_(box), rows_(rows), cols_(cols) {
    SP_ASSERT(rows > 0 && cols > 0);
    SP_ASSERT(box.valid());
  }

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::uint32_t num_cells() const { return rows_ * cols_; }
  const Box& box() const { return box_; }

  /// Row/col of the cell containing p (clamped to the lattice).
  std::pair<std::uint32_t, std::uint32_t> cell_of(const Vec2& p) const {
    double fx = (p[0] - box_.lo[0]) / std::max(box_.width(), 1e-300);
    double fy = (p[1] - box_.lo[1]) / std::max(box_.height(), 1e-300);
    auto col = static_cast<std::int64_t>(fx * cols_);
    auto row = static_cast<std::int64_t>(fy * rows_);
    col = std::clamp<std::int64_t>(col, 0, cols_ - 1);
    row = std::clamp<std::int64_t>(row, 0, rows_ - 1);
    return {static_cast<std::uint32_t>(row), static_cast<std::uint32_t>(col)};
  }

  std::uint32_t cell_index(const Vec2& p) const {
    auto [row, col] = cell_of(p);
    return row * cols_ + col;
  }

  Box cell_box(std::uint32_t row, std::uint32_t col) const {
    SP_ASSERT(row < rows_ && col < cols_);
    double cw = box_.width() / cols_;
    double ch = box_.height() / rows_;
    Box cell;
    cell.lo = vec2(box_.lo[0] + cw * col, box_.lo[1] + ch * row);
    cell.hi = vec2(box_.lo[0] + cw * (col + 1), box_.lo[1] + ch * (row + 1));
    return cell;
  }

  /// The paper's ghost-coordinate rule: a ghost vertex whose true cell is
  /// (gr,gc) is presented to owner cell (r,c) as if it lay in the L1-nearest
  /// of the owner's neighbouring cells; its coordinate is clamped into that
  /// neighbouring cell's box.
  Vec2 clamp_to_neighbor(std::uint32_t owner_row, std::uint32_t owner_col,
                         const Vec2& ghost) const {
    auto [gr, gc] = cell_of(ghost);
    auto nr = std::clamp<std::int64_t>(gr, std::int64_t(owner_row) - 1,
                                       std::int64_t(owner_row) + 1);
    auto nc = std::clamp<std::int64_t>(gc, std::int64_t(owner_col) - 1,
                                       std::int64_t(owner_col) + 1);
    nr = std::clamp<std::int64_t>(nr, 0, rows_ - 1);
    nc = std::clamp<std::int64_t>(nc, 0, cols_ - 1);
    Box nb = cell_box(static_cast<std::uint32_t>(nr),
                      static_cast<std::uint32_t>(nc));
    // Inset slightly from the cell faces so the clamped point maps back to
    // the intended cell rather than the adjacent one sharing the face.
    double inset_x = 1e-9 * std::max(nb.width(), 1e-300);
    double inset_y = 1e-9 * std::max(nb.height(), 1e-300);
    return vec2(std::clamp(ghost[0], nb.lo[0] + inset_x, nb.hi[0] - inset_x),
                std::clamp(ghost[1], nb.lo[1] + inset_y, nb.hi[1] - inset_y));
  }

 private:
  Box box_;
  std::uint32_t rows_;
  std::uint32_t cols_;
};

}  // namespace sp::geom
