// Barnes-Hut quadtree over weighted 2-D points.
//
// Used by the sequential force-directed embedder (the "Hu-style" baseline
// that stands in for the paper's Mathematica coordinates) to approximate
// all-pairs repulsive forces in O(n log n). Nodes store aggregate mass and
// centre of mass; traversal opens a node when cell_size / distance exceeds
// theta.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/vec.hpp"

namespace sp::geom {

class QuadTree {
 public:
  /// Builds over `points` with per-point `masses` (empty => unit masses).
  /// leaf_capacity points may share a leaf before it splits.
  QuadTree(std::span<const Vec2> points, std::span<const double> masses,
           std::uint32_t leaf_capacity = 8);

  /// Sum of kernel(center_of_mass, mass) over an approximation of all
  /// points, opening nodes with extent/distance >= theta. `skip` is the
  /// index of a point to exclude (the force target itself), or -1.
  ///
  /// kernel(delta, mass) must return the force contribution for an
  /// aggregate of `mass` located at displacement `delta` from the query.
  Vec2 accumulate(const Vec2& query, std::int64_t skip, double theta,
                  const std::function<Vec2(const Vec2& delta, double mass)>&
                      kernel) const;

  /// Statically-dispatched variant of accumulate() for hot loops: the
  /// kernel is inlined instead of going through std::function, and the
  /// traversal stack lives on the C stack. Traversal order — and therefore
  /// the floating-point accumulation order — is identical to accumulate().
  template <class Kernel>
  Vec2 accumulate_with(const Vec2& query, std::int64_t skip, double theta,
                       Kernel&& kernel) const {
    Vec2 total{};
    if (nodes_.empty()) return total;
    // Nodes split only while deeper than kMaxDepth; each visit pops one
    // entry and pushes at most four, so 4 * kMaxDepth + 4 bounds the stack.
    std::uint32_t stack[4 * kMaxDepth + 4];
    std::uint32_t top = 0;
    stack[top++] = 0;
    while (top > 0) {
      const Node& node = nodes_[stack[--top]];
      if (node.mass <= 0.0) continue;

      double extent = std::max(node.box.width(), node.box.height());
      double dist = distance(query, node.center_of_mass);
      bool is_leaf = node.first_child < 0;
      if (!is_leaf && extent >= theta * dist) {
        for (int q = 0; q < 4; ++q) {
          stack[top++] = static_cast<std::uint32_t>(node.first_child + q);
        }
        continue;
      }
      if (is_leaf) {
        for (std::uint32_t i = node.point_begin; i < node.point_end; ++i) {
          std::uint32_t p = point_index_[i];
          if (static_cast<std::int64_t>(p) == skip) continue;
          total += kernel(query - points_[p], masses_[p]);
        }
      } else {
        // Far enough: treat the whole subtree as one aggregate. The skipped
        // point's contribution is negligible at this distance by the theta
        // criterion, matching standard Barnes-Hut practice.
        total += kernel(query - node.center_of_mass, node.mass);
      }
    }
    return total;
  }

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_points() const { return points_.size(); }
  const Box& bounds() const { return bounds_; }

  /// Total mass under the root (tests: must equal the input mass sum).
  double total_mass() const;

 private:
  // Depth cap guards against coincident points that can never be separated.
  static constexpr std::uint32_t kMaxDepth = 48;

  struct Node {
    Box box;
    Vec2 center_of_mass{};
    double mass = 0.0;
    std::int32_t first_child = -1;   // index of 4 consecutive children, or -1
    std::uint32_t point_begin = 0;   // leaf: range into point_index_
    std::uint32_t point_end = 0;
  };

  void build(std::uint32_t node, std::uint32_t begin, std::uint32_t end,
             std::uint32_t leaf_capacity, std::uint32_t depth);

  std::vector<Vec2> points_;
  std::vector<double> masses_;
  std::vector<std::uint32_t> point_index_;  // permuted into node ranges
  std::vector<Node> nodes_;
  Box bounds_;
};

}  // namespace sp::geom
