// Barnes-Hut quadtree over weighted 2-D points.
//
// Used by the sequential force-directed embedder (the "Hu-style" baseline
// that stands in for the paper's Mathematica coordinates) to approximate
// all-pairs repulsive forces in O(n log n). Nodes store aggregate mass and
// centre of mass; traversal opens a node when cell_size / distance exceeds
// theta.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geometry/box.hpp"
#include "geometry/vec.hpp"

namespace sp::geom {

class QuadTree {
 public:
  /// Builds over `points` with per-point `masses` (empty => unit masses).
  /// leaf_capacity points may share a leaf before it splits.
  QuadTree(std::span<const Vec2> points, std::span<const double> masses,
           std::uint32_t leaf_capacity = 8);

  /// Sum of kernel(center_of_mass, mass) over an approximation of all
  /// points, opening nodes with extent/distance >= theta. `skip` is the
  /// index of a point to exclude (the force target itself), or -1.
  ///
  /// kernel(delta, mass) must return the force contribution for an
  /// aggregate of `mass` located at displacement `delta` from the query.
  Vec2 accumulate(const Vec2& query, std::int64_t skip, double theta,
                  const std::function<Vec2(const Vec2& delta, double mass)>&
                      kernel) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_points() const { return points_.size(); }
  const Box& bounds() const { return bounds_; }

  /// Total mass under the root (tests: must equal the input mass sum).
  double total_mass() const;

 private:
  struct Node {
    Box box;
    Vec2 center_of_mass{};
    double mass = 0.0;
    std::int32_t first_child = -1;   // index of 4 consecutive children, or -1
    std::uint32_t point_begin = 0;   // leaf: range into point_index_
    std::uint32_t point_end = 0;
  };

  void build(std::uint32_t node, std::uint32_t begin, std::uint32_t end,
             std::uint32_t leaf_capacity, std::uint32_t depth);

  std::vector<Vec2> points_;
  std::vector<double> masses_;
  std::vector<std::uint32_t> point_index_;  // permuted into node ranges
  std::vector<Node> nodes_;
  Box bounds_;
};

}  // namespace sp::geom
