// Sphere geometry for the Gilbert-Miller-Teng geometric mesh partitioner.
//
// The GMT scheme lifts the 2-D embedding onto the unit sphere S^2 in R^3 by
// stereographic projection, conformally re-centres the point set so its
// centerpoint moves to the sphere's centre, and cuts with random great
// circles. A great circle of the mapped sphere corresponds to a circle (or
// line) separator in the original plane, which is what gives the provably
// small separators on well-shaped meshes.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "geometry/vec.hpp"
#include "support/random.hpp"

namespace sp::geom {

/// Stereographic lift of the plane onto the unit sphere (inverse projection
/// from the north pole (0,0,1)): x -> (2x, |x|^2 - 1) / (|x|^2 + 1).
Vec3 stereo_up(const Vec2& x);

/// Stereographic projection from the north pole back to the plane.
/// Undefined at the pole itself; callers never map the pole.
Vec2 stereo_down(const Vec3& p);

/// 3x3 rotation matrix as row-major array; rotate(v) = R v.
struct Rot3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};
  Vec3 apply(const Vec3& v) const;
  Rot3 transposed() const;
};

/// Rotation taking unit vector `from` to unit vector `to` (Rodrigues).
Rot3 rotation_between(const Vec3& from, const Vec3& to);

/// Conformal map used by GMT: rotate the centerpoint onto the +z axis, then
/// dilate through stereographic projection by alpha = sqrt((1-r)/(1+r))
/// where r = |centerpoint|. After this map the centerpoint of the point set
/// lies near the sphere centre, so every great circle through the origin
/// splits the set with bounded imbalance.
class ConformalMap {
 public:
  /// centerpoint must lie strictly inside the unit ball.
  explicit ConformalMap(const Vec3& centerpoint);

  Vec3 apply(const Vec3& p) const;

  double alpha() const { return alpha_; }

 private:
  Rot3 rotation_;
  double alpha_ = 1.0;
};

/// Radon point of d+2 = 5 points in R^3: a point common to the convex hulls
/// of both classes of the Radon partition. Returns false when the points
/// are too degenerate to split (callers then resample).
bool radon_point(std::span<const Vec3> five_points, Vec3* out);

/// Approximate centerpoint by sampling `sample_size` points and repeatedly
/// replacing random groups of 5 by their Radon point until one remains
/// (Clarkson et al. style iterated-Radon heuristic; this is what the
/// geopart Matlab code uses). Deterministic given the Rng.
Vec3 approximate_centerpoint(std::span<const Vec3> points, Rng& rng,
                             std::size_t sample_size = 800);

/// Uniform random unit vector in R^3 (great-circle normal).
Vec3 random_unit_vector(Rng& rng);

}  // namespace sp::geom
