// Small fixed-dimension vector types.
//
// Embeddings live in R^2 (the paper's lattice is a 2-D grid); the geometric
// mesh partitioner lifts points one dimension up, so R^3 is needed too. A
// single template keeps the great-circle machinery dimension-generic.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace sp::geom {

template <std::size_t D>
struct Vec {
  std::array<double, D> c{};

  double& operator[](std::size_t i) { return c[i]; }
  double operator[](std::size_t i) const { return c[i]; }

  Vec& operator+=(const Vec& o) {
    for (std::size_t i = 0; i < D; ++i) c[i] += o.c[i];
    return *this;
  }
  Vec& operator-=(const Vec& o) {
    for (std::size_t i = 0; i < D; ++i) c[i] -= o.c[i];
    return *this;
  }
  Vec& operator*=(double s) {
    for (std::size_t i = 0; i < D; ++i) c[i] *= s;
    return *this;
  }
  Vec& operator/=(double s) { return *this *= (1.0 / s); }

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }
  friend Vec operator/(Vec a, double s) { return a /= s; }
  friend Vec operator-(Vec a) { return a *= -1.0; }
  friend bool operator==(const Vec& a, const Vec& b) { return a.c == b.c; }

  double dot(const Vec& o) const {
    double s = 0.0;
    for (std::size_t i = 0; i < D; ++i) s += c[i] * o.c[i];
    return s;
  }
  double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }

  Vec normalized() const {
    double n = norm();
    return n > 0.0 ? *this / n : *this;
  }
};

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;
using Vec4 = Vec<4>;

inline Vec2 vec2(double x, double y) { return Vec2{{x, y}}; }
inline Vec3 vec3(double x, double y, double z) { return Vec3{{x, y, z}}; }

inline double cross(const Vec2& a, const Vec2& b) {
  return a[0] * b[1] - a[1] * b[0];
}

inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return vec3(a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
              a[0] * b[1] - a[1] * b[0]);
}

template <std::size_t D>
double distance(const Vec<D>& a, const Vec<D>& b) {
  return (a - b).norm();
}

template <std::size_t D>
double distance2(const Vec<D>& a, const Vec<D>& b) {
  return (a - b).norm2();
}

}  // namespace sp::geom
