#include "geometry/delaunay.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "support/assert.hpp"

namespace sp::geom {

double orient2d(const Vec2& a, const Vec2& b, const Vec2& c) {
  return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
}

double in_circle(const Vec2& a, const Vec2& b, const Vec2& c, const Vec2& d) {
  // Standard 3x3 determinant of lifted points relative to d.
  double adx = a[0] - d[0], ady = a[1] - d[1];
  double bdx = b[0] - d[0], bdy = b[1] - d[1];
  double cdx = c[0] - d[0], cdy = c[1] - d[1];
  double ad = adx * adx + ady * ady;
  double bd = bdx * bdx + bdy * bdy;
  double cd = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) +
         ad * (bdx * cdy - bdy * cdx);
}

namespace {

constexpr std::int32_t kNone = -1;

struct Tri {
  // CCW vertex indices; nbr[i] is the triangle across the edge opposite
  // v[i], i.e. sharing edge (v[(i+1)%3], v[(i+2)%3]).
  std::array<std::uint32_t, 3> v;
  std::array<std::int32_t, 3> nbr{kNone, kNone, kNone};
  bool alive = true;
};

class Triangulator {
 public:
  explicit Triangulator(std::span<const Vec2> input) {
    const std::size_t n = input.size();
    points_.assign(input.begin(), input.end());
    if (n < 2) return;

    // Super-triangle comfortably containing all points.
    Vec2 lo = input[0], hi = input[0];
    for (const Vec2& p : input) {
      lo[0] = std::min(lo[0], p[0]);
      lo[1] = std::min(lo[1], p[1]);
      hi[0] = std::max(hi[0], p[0]);
      hi[1] = std::max(hi[1], p[1]);
    }
    Vec2 mid = (lo + hi) * 0.5;
    double span = std::max({hi[0] - lo[0], hi[1] - lo[1], 1.0}) * 64.0;
    super_base_ = static_cast<std::uint32_t>(points_.size());
    points_.push_back(vec2(mid[0] - span, mid[1] - span * 0.7));
    points_.push_back(vec2(mid[0] + span, mid[1] - span * 0.7));
    points_.push_back(vec2(mid[0], mid[1] + span));

    Tri root;
    root.v = {super_base_, super_base_ + 1, super_base_ + 2};
    if (orient2d(points_[root.v[0]], points_[root.v[1]], points_[root.v[2]]) <
        0) {
      std::swap(root.v[1], root.v[2]);
    }
    tris_.push_back(root);
    last_alive_ = 0;

    // Insert in a spatially coherent order so the walk stays short.
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
    // Grid-bucket Morton-ish order: sort by coarse cell then x.
    double cell = std::max(hi[0] - lo[0], hi[1] - lo[1]) /
                  std::max(1.0, std::sqrt(static_cast<double>(n)));
    if (cell <= 0) cell = 1.0;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      auto key = [&](std::uint32_t i) {
        long long gy = static_cast<long long>((points_[i][1] - lo[1]) / cell);
        long long gx = static_cast<long long>((points_[i][0] - lo[0]) / cell);
        // Boustrophedon row order keeps consecutive inserts adjacent.
        if (gy & 1) gx = -gx;
        return std::make_pair(gy, gx);
      };
      auto ka = key(a), kb = key(b);
      if (ka != kb) return ka < kb;
      return a < b;
    });

    for (std::uint32_t idx : order) insert(idx);
  }

  std::vector<std::array<std::uint32_t, 3>> real_triangles() const {
    std::vector<std::array<std::uint32_t, 3>> out;
    for (const Tri& t : tris_) {
      if (!t.alive) continue;
      if (t.v[0] >= super_base_ || t.v[1] >= super_base_ ||
          t.v[2] >= super_base_) {
        continue;
      }
      out.push_back(t.v);
    }
    return out;
  }

 private:
  std::int32_t locate(const Vec2& p) const {
    std::int32_t cur = last_alive_;
    SP_ASSERT(cur != kNone);
    // Straight walk with a generous step bound; falls back to a scan if the
    // walk cycles (possible only under severe degeneracy).
    std::size_t limit = tris_.size() * 4 + 64;
    for (std::size_t step = 0; step < limit; ++step) {
      const Tri& t = tris_[static_cast<std::size_t>(cur)];
      std::int32_t next = kNone;
      for (int i = 0; i < 3; ++i) {
        const Vec2& a = points_[t.v[(i + 1) % 3]];
        const Vec2& b = points_[t.v[(i + 2) % 3]];
        if (orient2d(a, b, p) < 0) {
          next = t.nbr[i];
          break;
        }
      }
      if (next == kNone) return cur;
      cur = next;
    }
    for (std::size_t i = 0; i < tris_.size(); ++i) {
      const Tri& t = tris_[i];
      if (!t.alive) continue;
      bool inside = true;
      for (int k = 0; k < 3; ++k) {
        if (orient2d(points_[t.v[(k + 1) % 3]], points_[t.v[(k + 2) % 3]], p) <
            0) {
          inside = false;
          break;
        }
      }
      if (inside) return static_cast<std::int32_t>(i);
    }
    SP_ASSERT_MSG(false, "delaunay locate failed");
    return kNone;
  }

  void insert(std::uint32_t pi) {
    const Vec2& p = points_[pi];
    std::int32_t seed = locate(p);

    // Grow the cavity: all connected triangles whose circumcircle contains p.
    std::vector<std::int32_t> bad;
    std::vector<std::int32_t> stack = {seed};
    tris_[static_cast<std::size_t>(seed)].alive = false;  // mark visited/bad
    while (!stack.empty()) {
      std::int32_t ti = stack.back();
      stack.pop_back();
      bad.push_back(ti);
      const Tri t = tris_[static_cast<std::size_t>(ti)];
      for (int i = 0; i < 3; ++i) {
        std::int32_t ni = t.nbr[i];
        if (ni == kNone || !tris_[static_cast<std::size_t>(ni)].alive) continue;
        const Tri& nb = tris_[static_cast<std::size_t>(ni)];
        if (in_circle(points_[nb.v[0]], points_[nb.v[1]], points_[nb.v[2]], p) >
            0) {
          tris_[static_cast<std::size_t>(ni)].alive = false;
          stack.push_back(ni);
        }
      }
    }

    // Boundary edges of the cavity: for each bad triangle, each edge whose
    // neighbour is outside the cavity (alive or kNone). Create the fan.
    struct FanEdge {
      std::uint32_t a, b;        // cavity boundary edge, CCW as seen from p
      std::int32_t outside;      // triangle beyond the edge
      std::int32_t outside_slot; // slot in `outside` pointing back
    };
    std::vector<FanEdge> fan;
    for (std::int32_t ti : bad) {
      const Tri& t = tris_[static_cast<std::size_t>(ti)];
      for (int i = 0; i < 3; ++i) {
        std::int32_t ni = t.nbr[i];
        bool outside = (ni == kNone) || tris_[static_cast<std::size_t>(ni)].alive;
        if (!outside) continue;
        FanEdge e;
        e.a = t.v[(i + 1) % 3];
        e.b = t.v[(i + 2) % 3];
        e.outside = ni;
        e.outside_slot = kNone;
        if (ni != kNone) {
          const Tri& o = tris_[static_cast<std::size_t>(ni)];
          for (int k = 0; k < 3; ++k) {
            if (o.nbr[k] == ti) {
              e.outside_slot = k;
              break;
            }
          }
          SP_ASSERT(e.outside_slot != kNone);
        }
        fan.push_back(e);
      }
    }
    SP_ASSERT(!fan.empty());

    // New triangle (p, a, b) per fan edge; neighbour opposite p is the
    // outside triangle; the two edges incident to p link adjacent fan
    // triangles, matched through a per-endpoint map.
    std::unordered_map<std::uint32_t, std::pair<std::int32_t, int>> open_edge;
    open_edge.reserve(fan.size() * 2);
    std::int32_t first_new = kNone;
    for (const FanEdge& e : fan) {
      Tri nt;
      nt.v = {pi, e.a, e.b};
      nt.nbr = {e.outside, kNone, kNone};  // slot 0 opposite p = edge (a,b)
      std::int32_t nti = static_cast<std::int32_t>(tris_.size());
      tris_.push_back(nt);
      if (first_new == kNone) first_new = nti;
      if (e.outside != kNone) {
        tris_[static_cast<std::size_t>(e.outside)].nbr[static_cast<std::size_t>(
            e.outside_slot)] = nti;
      }
      // Edge (p, a) is opposite vertex b -> slot 2; edge (p, b) opposite a
      // -> slot 1. Another fan triangle shares each of these through the
      // endpoint (a or b).
      auto link = [&](std::uint32_t endpoint, int slot) {
        auto it = open_edge.find(endpoint);
        if (it == open_edge.end()) {
          open_edge.emplace(endpoint, std::make_pair(nti, slot));
        } else {
          auto [other_tri, other_slot] = it->second;
          tris_[static_cast<std::size_t>(nti)].nbr[static_cast<std::size_t>(
              slot)] = other_tri;
          tris_[static_cast<std::size_t>(other_tri)]
              .nbr[static_cast<std::size_t>(other_slot)] = nti;
          open_edge.erase(it);
        }
      };
      link(e.a, 2);
      link(e.b, 1);
    }
    SP_ASSERT_MSG(open_edge.empty(), "cavity boundary not closed");
    last_alive_ = first_new;
  }

  std::vector<Vec2> points_;
  std::vector<Tri> tris_;
  std::uint32_t super_base_ = 0;
  std::int32_t last_alive_ = kNone;
};

}  // namespace

Triangulation delaunay_triangulate(std::span<const Vec2> points) {
  Triangulation result;
  if (points.size() < 3) return result;
  Triangulator tri(points);
  result.triangles = tri.real_triangles();
  return result;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> delaunay_edges(
    std::span<const Vec2> points) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  if (points.size() == 2) {
    edges.emplace_back(0u, 1u);
    return edges;
  }
  Triangulation tri = delaunay_triangulate(points);
  edges.reserve(tri.triangles.size() * 3 / 2);
  for (const auto& t : tri.triangles) {
    for (int i = 0; i < 3; ++i) {
      std::uint32_t a = t[static_cast<std::size_t>(i)];
      std::uint32_t b = t[static_cast<std::size_t>((i + 1) % 3)];
      if (a > b) std::swap(a, b);
      edges.emplace_back(a, b);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace sp::geom
