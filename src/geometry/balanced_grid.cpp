#include "geometry/balanced_grid.hpp"

namespace sp::geom {

BalancedGrid::BalancedGrid(const Box& bounds, std::uint32_t rows,
                           std::uint32_t cols, std::span<const Vec2> sample)
    : bounds_(bounds), rows_(rows), cols_(cols) {
  SP_ASSERT(rows > 0 && cols > 0);
  SP_ASSERT(bounds.valid());
  row_bounds_.assign(rows_ + 1, 0.0);
  row_bounds_.front() = bounds_.lo[1];
  row_bounds_.back() = bounds_.hi[1];
  col_bounds_.assign(rows_, std::vector<double>(cols_ + 1, 0.0));
  for (auto& cb : col_bounds_) {
    cb.front() = bounds_.lo[0];
    cb.back() = bounds_.hi[0];
  }

  if (sample.empty()) {
    // Uniform fallback.
    for (std::uint32_t r = 1; r < rows_; ++r) {
      row_bounds_[r] =
          bounds_.lo[1] + bounds_.height() * r / static_cast<double>(rows_);
    }
    for (auto& cb : col_bounds_) {
      for (std::uint32_t c = 1; c < cols_; ++c) {
        cb[c] = bounds_.lo[0] + bounds_.width() * c / static_cast<double>(cols_);
      }
    }
    return;
  }

  // Row boundaries: y-quantiles of the sample.
  std::vector<double> ys(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) ys[i] = sample[i][1];
  std::sort(ys.begin(), ys.end());
  for (std::uint32_t r = 1; r < rows_; ++r) {
    std::size_t idx = (sample.size() * r) / rows_;
    idx = std::min(idx, ys.size() - 1);
    row_bounds_[r] = ys[idx];
  }
  // Guard against duplicate boundaries (atomic y values): enforce strict
  // monotonicity with tiny offsets so locate() stays well defined.
  for (std::uint32_t r = 1; r <= rows_; ++r) {
    if (row_bounds_[r] <= row_bounds_[r - 1]) {
      row_bounds_[r] = row_bounds_[r - 1] +
                       1e-12 * std::max(1.0, std::abs(row_bounds_[r - 1]));
    }
  }

  // Column boundaries per row band: x-quantiles of the band's sample.
  std::vector<double> xs;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    xs.clear();
    for (const Vec2& p : sample) {
      if (p[1] >= row_bounds_[r] &&
          (r + 1 == rows_ || p[1] < row_bounds_[r + 1])) {
        xs.push_back(p[0]);
      }
    }
    auto& cb = col_bounds_[r];
    if (xs.empty()) {
      for (std::uint32_t c = 1; c < cols_; ++c) {
        cb[c] =
            bounds_.lo[0] + bounds_.width() * c / static_cast<double>(cols_);
      }
      continue;
    }
    std::sort(xs.begin(), xs.end());
    for (std::uint32_t c = 1; c < cols_; ++c) {
      std::size_t idx = (xs.size() * c) / cols_;
      idx = std::min(idx, xs.size() - 1);
      cb[c] = xs[idx];
    }
    for (std::uint32_t c = 1; c <= cols_; ++c) {
      if (cb[c] <= cb[c - 1]) {
        cb[c] = cb[c - 1] + 1e-12 * std::max(1.0, std::abs(cb[c - 1]));
      }
    }
  }
}

}  // namespace sp::geom
