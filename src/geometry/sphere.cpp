#include "geometry/sphere.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace sp::geom {

Vec3 stereo_up(const Vec2& x) {
  double n2 = x.norm2();
  double denom = n2 + 1.0;
  return vec3(2.0 * x[0] / denom, 2.0 * x[1] / denom, (n2 - 1.0) / denom);
}

Vec2 stereo_down(const Vec3& p) {
  double denom = 1.0 - p[2];
  SP_ASSERT_MSG(std::abs(denom) > 1e-300, "stereo_down at the pole");
  return vec2(p[0] / denom, p[1] / denom);
}

Vec3 Rot3::apply(const Vec3& v) const {
  return vec3(m[0] * v[0] + m[1] * v[1] + m[2] * v[2],
              m[3] * v[0] + m[4] * v[1] + m[5] * v[2],
              m[6] * v[0] + m[7] * v[1] + m[8] * v[2]);
}

Rot3 Rot3::transposed() const {
  Rot3 t;
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) t.m[static_cast<std::size_t>(3 * r + c)] =
        m[static_cast<std::size_t>(3 * c + r)];
  return t;
}

Rot3 rotation_between(const Vec3& from, const Vec3& to) {
  Vec3 f = from.normalized();
  Vec3 t = to.normalized();
  Vec3 axis = cross(f, t);
  double s = axis.norm();
  double c = f.dot(t);
  Rot3 rot;
  if (s < 1e-14) {
    if (c > 0) return rot;  // identity
    // Opposite vectors: rotate pi about any axis orthogonal to f.
    Vec3 ortho = std::abs(f[0]) < 0.9 ? vec3(1, 0, 0) : vec3(0, 1, 0);
    axis = cross(f, ortho).normalized();
    s = 0.0;
    c = -1.0;
    // Fall through to Rodrigues with sin=0, cos=-1: R = 2*aa^T - I.
    for (int r = 0; r < 3; ++r)
      for (int col = 0; col < 3; ++col)
        rot.m[static_cast<std::size_t>(3 * r + col)] =
            2.0 * axis[static_cast<std::size_t>(r)] *
                axis[static_cast<std::size_t>(col)] -
            (r == col ? 1.0 : 0.0);
    return rot;
  }
  Vec3 a = axis / s;
  // Rodrigues' rotation formula: R = I + sin*K + (1-cos)*K^2.
  double x = a[0], y = a[1], z = a[2];
  double omc = 1.0 - c;
  rot.m = {c + x * x * omc,     x * y * omc - z * s, x * z * omc + y * s,
           y * x * omc + z * s, c + y * y * omc,     y * z * omc - x * s,
           z * x * omc - y * s, z * y * omc + x * s, c + z * z * omc};
  return rot;
}

ConformalMap::ConformalMap(const Vec3& centerpoint) {
  double r = centerpoint.norm();
  r = std::min(r, 1.0 - 1e-9);
  if (r < 1e-12) {
    // Already centred; identity map.
    alpha_ = 1.0;
    return;
  }
  rotation_ = rotation_between(centerpoint / centerpoint.norm(), vec3(0, 0, 1));
  alpha_ = std::sqrt((1.0 - r) / (1.0 + r));
}

Vec3 ConformalMap::apply(const Vec3& p) const {
  Vec3 q = rotation_.apply(p);
  if (alpha_ == 1.0) return q;
  // Dilate by alpha through the stereographic chart. Guard the pole: points
  // at the projection pole are fixed by the dilation in the limit.
  if (q[2] > 1.0 - 1e-12) return q;
  Vec2 plane = stereo_down(q) * alpha_;
  return stereo_up(plane);
}

bool radon_point(std::span<const Vec3> five_points, Vec3* out) {
  SP_ASSERT(five_points.size() == 5);
  // Find a nontrivial affine dependency: sum l_i p_i = 0, sum l_i = 0.
  // 4 equations (3 coords + affine) in 5 unknowns; Gaussian elimination
  // with partial pivoting, free variable set to 1.
  constexpr int kRows = 4, kCols = 5;
  double a[kRows][kCols];
  for (int j = 0; j < kCols; ++j) {
    for (int i = 0; i < 3; ++i) a[i][j] = five_points[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    a[3][j] = 1.0;
  }
  int pivot_col[kRows];
  bool col_used[kCols] = {false, false, false, false, false};
  int rank = 0;
  for (int row = 0; row < kRows; ++row) {
    // Choose pivot: largest magnitude among unused columns in this row and
    // below (column pivoting over remaining columns).
    int best_col = -1;
    double best = 1e-12;
    for (int col = 0; col < kCols; ++col) {
      if (col_used[col]) continue;
      if (std::abs(a[row][col]) > best) {
        best = std::abs(a[row][col]);
        best_col = col;
      }
    }
    if (best_col < 0) continue;  // row is (near) zero
    col_used[best_col] = true;
    pivot_col[rank] = best_col;
    double inv = 1.0 / a[row][best_col];
    for (int col = 0; col < kCols; ++col) a[row][col] *= inv;
    for (int r = 0; r < kRows; ++r) {
      if (r == row) continue;
      double factor = a[r][best_col];
      if (factor == 0.0) continue;
      for (int col = 0; col < kCols; ++col) a[r][col] -= factor * a[row][col];
    }
    ++rank;
  }
  // Free column: any unused one.
  int free_col = -1;
  for (int col = 0; col < kCols; ++col) {
    if (!col_used[col]) {
      free_col = col;
      break;
    }
  }
  if (free_col < 0) return false;

  double lambda[kCols] = {0, 0, 0, 0, 0};
  lambda[free_col] = 1.0;
  for (int r = 0; r < rank; ++r) lambda[pivot_col[r]] = -a[r][free_col];

  // Radon point = weighted average of the positive class.
  Vec3 num{};
  double denom = 0.0;
  for (int j = 0; j < kCols; ++j) {
    if (lambda[j] > 0.0) {
      num += five_points[static_cast<std::size_t>(j)] * lambda[j];
      denom += lambda[j];
    }
  }
  if (denom < 1e-12) return false;
  *out = num / denom;
  return true;
}

Vec3 approximate_centerpoint(std::span<const Vec3> points, Rng& rng,
                             std::size_t sample_size) {
  SP_ASSERT(!points.empty());
  std::vector<Vec3> pool;
  std::size_t take = std::min(sample_size, points.size());
  pool.reserve(take);
  if (points.size() <= sample_size) {
    pool.assign(points.begin(), points.end());
  } else {
    for (std::size_t i = 0; i < take; ++i) {
      pool.push_back(points[rng.below(points.size())]);
    }
  }
  // Repeatedly replace 5 random pool points by their Radon point. Each
  // replacement shrinks the pool by 4; stop at < 5 and average the rest.
  while (pool.size() >= 5) {
    // Draw 5 distinct indices (pool is small; retry duplicates).
    std::size_t idx[5];
    for (int k = 0; k < 5;) {
      std::size_t cand = rng.below(pool.size());
      bool dup = false;
      for (int j = 0; j < k; ++j) dup |= (idx[j] == cand);
      if (!dup) idx[k++] = cand;
    }
    Vec3 sample[5];
    for (int k = 0; k < 5; ++k) sample[k] = pool[idx[k]];
    Vec3 rp;
    if (!radon_point(std::span<const Vec3>(sample, 5), &rp)) {
      // Degenerate sample: drop one point instead to guarantee progress.
      pool[idx[0]] = pool.back();
      pool.pop_back();
      continue;
    }
    // Remove the 5 (descending index order keeps swaps valid), add the
    // Radon point.
    std::sort(idx, idx + 5, std::greater<std::size_t>());
    for (int k = 0; k < 5; ++k) {
      pool[idx[k]] = pool.back();
      pool.pop_back();
    }
    pool.push_back(rp);
  }
  Vec3 sum{};
  for (const Vec3& p : pool) sum += p;
  return sum / static_cast<double>(pool.size());
}

Vec3 random_unit_vector(Rng& rng) {
  for (;;) {
    Vec3 v = vec3(rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1));
    double n2 = v.norm2();
    if (n2 > 1e-8 && n2 <= 1.0) return v / std::sqrt(n2);
  }
}

}  // namespace sp::geom
