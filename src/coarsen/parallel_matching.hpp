// Distributed heavy-edge matching (ParMetis-style coarsening step).
//
// SPMD over a block-distributed graph: each round, every rank proposes a
// match for each of its still-unmatched owned vertices across the heaviest
// incident edge; proposals to non-owned endpoints travel to the owning
// rank, which accepts the best proposal per vertex and notifies winners
// and losers; finally each rank tells its halo neighbours which boundary
// vertices got matched so the next round's proposals avoid them. A few
// rounds leave only a small unmatched residue, exactly as in ParMetis.
//
// ScalaPart coarsens "in the same manner as ParMetis" (Sec. 3); the BSP
// pipeline runs this to obtain the coarsening stage's real communication
// profile, and tests verify the result is a valid global matching.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/engine.hpp"
#include "graph/csr_graph.hpp"
#include "graph/distributed_graph.hpp"

namespace sp::coarsen {

struct DistributedMatchingResult {
  /// Partner (global id) for each owned vertex; self-id when unmatched.
  std::vector<graph::VertexId> partner;
  std::uint32_t rounds_used = 0;
};

DistributedMatchingResult distributed_matching(comm::Comm& comm,
                                               const graph::LocalView& view,
                                               std::uint32_t rounds,
                                               std::uint64_t seed);

}  // namespace sp::coarsen
