#include "coarsen/contract.hpp"

#include "support/assert.hpp"

namespace sp::coarsen {

using graph::Bipartition;
using graph::CsrGraph;
using graph::GraphBuilder;
using graph::VertexId;

Contraction contract(const CsrGraph& g, const Matching& match) {
  const VertexId n = g.num_vertices();
  Contraction out;
  out.fine_to_coarse.assign(n, graph::kInvalidVertex);

  // Number coarse vertices: the lower-id endpoint of each pair is the
  // representative.
  VertexId coarse_n = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (v <= match[v]) {
      out.fine_to_coarse[v] = coarse_n;
      out.coarse_to_fine.push_back(v);
      ++coarse_n;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (v > match[v]) out.fine_to_coarse[v] = out.fine_to_coarse[match[v]];
  }

  GraphBuilder builder(coarse_n);
  builder.reserve_edges(static_cast<std::size_t>(g.num_edges()));
  for (VertexId u = 0; u < n; ++u) {
    VertexId cu = out.fine_to_coarse[u];
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights_of(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      VertexId cv = out.fine_to_coarse[nbrs[k]];
      // Add each fine edge once (from the endpoint with smaller global id);
      // builder merges parallels and drops the self loops of matched pairs.
      if (u < nbrs[k]) builder.add_edge(cu, cv, ws[k]);
    }
  }
  for (VertexId cv = 0; cv < coarse_n; ++cv) {
    VertexId rep = out.coarse_to_fine[cv];
    graph::Weight w = g.vertex_weight(rep);
    if (match[rep] != rep) w += g.vertex_weight(match[rep]);
    builder.set_vertex_weight(cv, w);
  }
  out.coarse = builder.build();
  SP_ASSERT(out.coarse.total_vertex_weight() == g.total_vertex_weight());
  return out;
}

Bipartition project_partition(const Contraction& c,
                              const Bipartition& coarse_part) {
  SP_ASSERT(coarse_part.size() == c.coarse.num_vertices());
  Bipartition fine(c.fine_to_coarse.size());
  for (VertexId v = 0; v < c.fine_to_coarse.size(); ++v) {
    fine[v] = coarse_part[c.fine_to_coarse[v]];
  }
  return fine;
}

}  // namespace sp::coarsen
