#include "coarsen/parallel_matching.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace sp::coarsen {

using graph::LocalView;
using graph::VertexId;
using graph::Weight;

namespace {
struct Proposal {
  VertexId from;    // proposing vertex (global)
  VertexId to;      // target vertex (global)
  Weight weight;    // edge weight (acceptance priority)
};
struct Verdict {
  VertexId from;
  VertexId to;
  std::uint32_t accepted;
};
struct MatchNote {
  VertexId vertex;  // boundary vertex that is now matched
};
}  // namespace

DistributedMatchingResult distributed_matching(comm::Comm& comm,
                                               const LocalView& view,
                                               std::uint32_t rounds,
                                               std::uint64_t seed) {
  const VertexId n_local = view.num_local();
  const VertexId n = view.global_graph().num_vertices();
  DistributedMatchingResult result;
  result.partner.assign(n_local, graph::kInvalidVertex);

  // Ghost match-state: true once we learn a ghost is matched.
  std::unordered_set<VertexId> ghost_matched;
  auto owner_of = [&](VertexId global) {
    return graph::block_owner(global, n, view.nranks());
  };

  Rng rng(seed ^ (0x9E37ull * (comm.rank() + 1)));

  for (std::uint32_t round = 0; round < rounds; ++round) {
    ++result.rounds_used;
    // Phase 1: proposals. Owned-to-owned pairs match immediately; a vertex
    // with an outstanding cross-rank proposal is `pending` and must not be
    // claimed by anyone else this round (it might win its own proposal).
    std::vector<std::uint8_t> pending(n_local, 0);
    std::vector<std::vector<Proposal>> outgoing(comm.nranks());
    auto order = random_permutation(n_local, rng);
    double work = 0.0;
    for (VertexId local : order) {
      if (result.partner[local] != graph::kInvalidVertex || pending[local]) {
        continue;
      }
      VertexId v = view.to_global(local);
      auto nbrs = view.neighbors(local);
      auto ws = view.edge_weights_of(local);
      work += static_cast<double>(nbrs.size());
      VertexId best = graph::kInvalidVertex;
      Weight best_w = -1;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        VertexId u = nbrs[k];
        if (view.owns(u)) {
          VertexId ul = view.to_local(u);
          if (result.partner[ul] != graph::kInvalidVertex || pending[ul]) {
            continue;
          }
        } else {
          if (ghost_matched.count(u)) continue;
        }
        if (ws[k] > best_w || (ws[k] == best_w && u < best)) {
          best = u;
          best_w = ws[k];
        }
      }
      if (best == graph::kInvalidVertex) continue;
      if (view.owns(best)) {
        result.partner[local] = best;
        result.partner[view.to_local(best)] = v;
      } else {
        // Random per-round edge orientation breaks the mutual-proposal
        // livelock (two vertices proposing to each other reject each other
        // forever without it).
        std::uint64_t salt = (static_cast<std::uint64_t>(round) + 1) * 0xA5A5ull;
        if (hash64(v ^ salt) < hash64(static_cast<std::uint64_t>(best) ^ salt)) {
          pending[local] = 1;
          outgoing[owner_of(best)].push_back({v, best, best_w});
        }
      }
    }
    comm.add_compute(work * 2.0);

    std::vector<std::pair<std::uint32_t, std::vector<Proposal>>> prop_msgs;
    for (std::uint32_t r = 0; r < comm.nranks(); ++r) {
      if (!outgoing[r].empty()) prop_msgs.emplace_back(r, std::move(outgoing[r]));
    }
    auto prop_in = comm.exchange_typed(prop_msgs);

    // Phase 2: owners accept the best proposal per target.
    std::unordered_map<VertexId, Proposal> best_prop;
    for (const auto& [src, payload] : prop_in) {
      (void)src;
      for (const Proposal& p : payload) {
        VertexId local = view.to_local(p.to);
        if (result.partner[local] != graph::kInvalidVertex || pending[local]) {
          continue;
        }
        auto it = best_prop.find(p.to);
        // Priority: heavier edge; tie-break by hashed proposer for fairness.
        if (it == best_prop.end() ||
            std::make_pair(p.weight, hash64(p.from)) >
                std::make_pair(it->second.weight, hash64(it->second.from))) {
          best_prop[p.to] = p;
        }
      }
    }
    std::vector<std::vector<Verdict>> verdicts(comm.nranks());
    for (const auto& [src, payload] : prop_in) {
      (void)src;
      for (const Proposal& p : payload) {
        auto it = best_prop.find(p.to);
        bool accepted = it != best_prop.end() && it->second.from == p.from;
        verdicts[owner_of(p.from)].push_back(
            {p.from, p.to, accepted ? 1u : 0u});
      }
    }
    // Apply accepted proposals on the owner side. Each key writes its own
    // distinct partner slot, so map order cannot leak into the result.
    // sp-lint-allow(unordered-iter)
    for (const auto& [target, prop] : best_prop) {
      result.partner[view.to_local(target)] = prop.from;
    }
    comm.add_compute(static_cast<double>(best_prop.size()) * 4.0);

    std::vector<std::pair<std::uint32_t, std::vector<Verdict>>> verdict_msgs;
    for (std::uint32_t r = 0; r < comm.nranks(); ++r) {
      if (!verdicts[r].empty()) verdict_msgs.emplace_back(r, std::move(verdicts[r]));
    }
    auto verdict_in = comm.exchange_typed(verdict_msgs);
    for (const auto& [src, payload] : verdict_in) {
      (void)src;
      for (const Verdict& v : payload) {
        VertexId local = view.to_local(v.from);
        if (v.accepted) {
          SP_ASSERT(result.partner[local] == graph::kInvalidVertex);
          result.partner[local] = v.to;
          ghost_matched.insert(v.to);
        }
      }
    }

    // Phase 3: tell halo neighbours which of my boundary vertices matched.
    std::vector<std::vector<MatchNote>> notes(comm.nranks());
    for (VertexId local : view.boundary_locals()) {
      if (result.partner[local] == graph::kInvalidVertex) continue;
      VertexId v = view.to_global(local);
      std::uint32_t last = comm.rank();
      for (VertexId u : view.neighbors(local)) {
        if (view.owns(u)) continue;
        std::uint32_t o = owner_of(u);
        if (o != last) {
          notes[o].push_back({v});
          last = o;
        }
      }
    }
    std::vector<std::pair<std::uint32_t, std::vector<MatchNote>>> note_msgs;
    for (std::uint32_t r = 0; r < comm.nranks(); ++r) {
      if (notes[r].empty() || r == comm.rank()) continue;
      auto& list = notes[r];
      std::sort(list.begin(), list.end(),
                [](const MatchNote& a, const MatchNote& b) {
                  return a.vertex < b.vertex;
                });
      list.erase(std::unique(list.begin(), list.end(),
                             [](const MatchNote& a, const MatchNote& b) {
                               return a.vertex == b.vertex;
                             }),
                 list.end());
      note_msgs.emplace_back(r, std::move(list));
    }
    auto note_in = comm.exchange_typed(note_msgs);
    for (const auto& [src, payload] : note_in) {
      (void)src;
      for (const MatchNote& nmsg : payload) ghost_matched.insert(nmsg.vertex);
    }
  }

  // Unmatched vertices match themselves.
  for (VertexId local = 0; local < n_local; ++local) {
    if (result.partner[local] == graph::kInvalidVertex) {
      result.partner[local] = view.to_global(local);
    }
  }
  return result;
}

}  // namespace sp::coarsen
