#include "coarsen/hierarchy.hpp"

#include <numeric>

#include "support/assert.hpp"

namespace sp::coarsen {

using graph::Bipartition;
using graph::CsrGraph;
using graph::VertexId;

Hierarchy Hierarchy::build(const CsrGraph& g, const HierarchyOptions& opt) {
  SP_ASSERT(opt.rounds_per_level >= 1);
  Hierarchy h;
  Level root;
  root.graph = g;  // copy; the hierarchy owns its levels
  h.levels_.push_back(std::move(root));

  Rng rng(opt.seed);
  while (h.levels_.size() < opt.max_levels &&
         h.levels_.back().graph.num_vertices() > opt.coarsest_size) {
    const CsrGraph& fine = h.levels_.back().graph;
    // Compose `rounds_per_level` matchings into one fine->coarse map.
    std::vector<VertexId> composed(fine.num_vertices());
    std::iota(composed.begin(), composed.end(), 0u);
    CsrGraph current = fine;
    bool progressed = false;
    for (std::uint32_t round = 0; round < opt.rounds_per_level; ++round) {
      if (current.num_vertices() <= opt.coarsest_size && round > 0) break;
      Matching match = heavy_edge_matching(current, rng);
      Contraction c = contract(current, match);
      if (c.coarse.num_vertices() >=
          static_cast<VertexId>(opt.min_shrink *
                                static_cast<double>(current.num_vertices()))) {
        break;  // matching stalled
      }
      for (auto& m : composed) m = c.fine_to_coarse[m];
      current = std::move(c.coarse);
      progressed = true;
    }
    if (!progressed) break;
    Level next;
    next.graph = std::move(current);
    next.fine_to_coarse = std::move(composed);
    h.levels_.push_back(std::move(next));
  }
  return h;
}

Bipartition Hierarchy::project(const Bipartition& part, std::size_t from,
                               std::size_t to) const {
  SP_ASSERT(from < levels_.size());
  SP_ASSERT(to <= from);
  SP_ASSERT(part.size() == levels_[from].graph.num_vertices());
  Bipartition current = part;
  for (std::size_t level = from; level > to; --level) {
    const auto& map = levels_[level].fine_to_coarse;
    Bipartition finer(map.size());
    for (VertexId v = 0; v < map.size(); ++v) finer[v] = current[map[v]];
    current = std::move(finer);
  }
  return current;
}

}  // namespace sp::coarsen
