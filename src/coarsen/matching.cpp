#include "coarsen/matching.hpp"

#include "support/assert.hpp"

namespace sp::coarsen {

using graph::CsrGraph;
using graph::VertexId;
using graph::Weight;

Matching heavy_edge_matching(const CsrGraph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  Matching match(n, graph::kInvalidVertex);
  auto order = random_permutation(n, rng);
  for (VertexId u : order) {
    if (match[u] != graph::kInvalidVertex) continue;
    auto nbrs = g.neighbors(u);
    auto ws = g.edge_weights_of(u);
    VertexId best = graph::kInvalidVertex;
    Weight best_w = -1;
    Weight best_vw = 0;
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      VertexId v = nbrs[k];
      if (match[v] != graph::kInvalidVertex) continue;
      Weight vw = g.vertex_weight(v);
      // Heaviest edge; on ties prefer the lighter endpoint so coarse vertex
      // weights stay balanced.
      if (ws[k] > best_w || (ws[k] == best_w && vw < best_vw)) {
        best = v;
        best_w = ws[k];
        best_vw = vw;
      }
    }
    if (best == graph::kInvalidVertex) {
      match[u] = u;
    } else {
      match[u] = best;
      match[best] = u;
    }
  }
  return match;
}

Matching random_matching(const CsrGraph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  Matching match(n, graph::kInvalidVertex);
  auto order = random_permutation(n, rng);
  for (VertexId u : order) {
    if (match[u] != graph::kInvalidVertex) continue;
    VertexId partner = graph::kInvalidVertex;
    auto nbrs = g.neighbors(u);
    // Random neighbour: scan from a random offset so the choice is not
    // biased toward low ids.
    if (!nbrs.empty()) {
      std::size_t start = rng.below(nbrs.size());
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        VertexId v = nbrs[(start + k) % nbrs.size()];
        if (match[v] == graph::kInvalidVertex) {
          partner = v;
          break;
        }
      }
    }
    if (partner == graph::kInvalidVertex) {
      match[u] = u;
    } else {
      match[u] = partner;
      match[partner] = u;
    }
  }
  return match;
}

void validate_matching(const CsrGraph& g, const Matching& match) {
  SP_ASSERT(match.size() == g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    SP_ASSERT_MSG(match[v] < g.num_vertices(), "matching out of range");
    SP_ASSERT_MSG(match[match[v]] == v, "matching is not an involution");
  }
}

double matched_fraction(const Matching& match) {
  if (match.empty()) return 0.0;
  std::size_t matched = 0;
  for (std::size_t v = 0; v < match.size(); ++v) {
    if (match[v] != v) ++matched;
  }
  return static_cast<double>(matched) / static_cast<double>(match.size());
}

}  // namespace sp::coarsen
