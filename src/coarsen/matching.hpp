// Vertex matchings for multilevel coarsening.
//
// Heavy-edge matching (HEM) is the coarsening rule used by ParMetis and
// adopted unchanged by ScalaPart: visit vertices in random order; an
// unmatched vertex matches its unmatched neighbour across the heaviest
// incident edge (ties broken toward lower vertex weight, which keeps coarse
// vertex weights even). Unmatched vertices match themselves.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "support/random.hpp"

namespace sp::coarsen {

/// match[v] = partner of v (== v when unmatched). Involution: for every v,
/// match[match[v]] == v.
using Matching = std::vector<graph::VertexId>;

Matching heavy_edge_matching(const graph::CsrGraph& g, Rng& rng);

/// Random matching: first unmatched neighbour in random visit order.
/// Cheaper, lower quality; used for comparison tests.
Matching random_matching(const graph::CsrGraph& g, Rng& rng);

/// Checks the involution property and range; aborts on violation.
void validate_matching(const graph::CsrGraph& g, const Matching& match);

/// Fraction of vertices that found a partner (quality indicator; HEM on a
/// sparse graph typically reaches > 0.8 so coarse graphs shrink ~2x).
double matched_fraction(const Matching& match);

}  // namespace sp::coarsen
