// Graph contraction: collapse a matching into a coarse graph.
//
// Matched pairs become one coarse vertex whose weight is the sum of the
// pair's weights; parallel coarse edges are merged with summed weights, so
// cut sizes are preserved exactly when a coarse partition is projected to
// the fine graph.
#pragma once

#include <vector>

#include "coarsen/matching.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"

namespace sp::coarsen {

struct Contraction {
  graph::CsrGraph coarse;
  /// fine vertex -> coarse vertex.
  std::vector<graph::VertexId> fine_to_coarse;
  /// coarse vertex -> one representative fine vertex (its matched partner
  /// is match[representative]).
  std::vector<graph::VertexId> coarse_to_fine;
};

Contraction contract(const graph::CsrGraph& g, const Matching& match);

/// Projects a coarse bipartition to the fine graph (every fine vertex
/// adopts its coarse vertex's side). Cut is preserved exactly.
graph::Bipartition project_partition(const Contraction& c,
                                     const graph::Bipartition& coarse_part);

}  // namespace sp::coarsen
