// Multilevel coarsening hierarchy.
//
// Builds the sequence G^0, G^1, ..., G^k the paper uses, with ScalaPart's
// one adaptation over ParMetis: only every other coarse graph is retained,
// so each retained level shrinks by ~1/4 (two rounds of heavy-edge
// matching), matching the quartering of the processor grid between levels.
#pragma once

#include <cstdint>
#include <vector>

#include "coarsen/contract.hpp"
#include "graph/csr_graph.hpp"
#include "graph/partition.hpp"
#include "support/random.hpp"

namespace sp::coarsen {

struct HierarchyOptions {
  /// Stop when a coarse graph has at most this many vertices.
  graph::VertexId coarsest_size = 512;
  /// Maximum retained levels (safety bound).
  std::uint32_t max_levels = 32;
  /// Rounds of matching+contraction between retained levels: 2 gives the
  /// paper's ~1/4 shrink ("we only retain every other graph"); 1 gives the
  /// classic ~1/2 (used by the MultilevelKL baselines and the ablation).
  std::uint32_t rounds_per_level = 2;
  /// Give up coarsening when a round shrinks the graph by less than this
  /// factor (dense/degenerate graphs stop matching).
  double min_shrink = 0.95;
  std::uint64_t seed = 1;
};

/// One retained level: the coarse graph plus the composed fine->coarse map
/// from the previous retained level.
struct Level {
  graph::CsrGraph graph;
  /// Maps a vertex of the previous (finer) retained level to this level.
  std::vector<graph::VertexId> fine_to_coarse;
};

class Hierarchy {
 public:
  /// levels()[0] is the input graph; levels()[i] for i>0 are coarser.
  static Hierarchy build(const graph::CsrGraph& g, const HierarchyOptions& opt);

  std::size_t num_levels() const { return levels_.size(); }
  const graph::CsrGraph& graph_at(std::size_t level) const {
    return levels_[level].graph;
  }
  const Level& level(std::size_t i) const { return levels_[i]; }
  const graph::CsrGraph& coarsest() const { return levels_.back().graph; }

  /// Projects a bipartition of level `from` down to level `to` (to < from).
  graph::Bipartition project(const graph::Bipartition& part, std::size_t from,
                             std::size_t to) const;

 private:
  std::vector<Level> levels_;
};

}  // namespace sp::coarsen
